//===-- interp/Interpreter.cpp - Tracing interpreter -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <unordered_map>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::lang;

namespace {

/// Two's-complement wrapping arithmetic: Siml semantics define + - * to
/// wrap (like hardware), avoiding undefined behaviour in the host.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Statement-level control flow outcome.
enum class Flow { Normal, Break, Continue, Return, Halt };

/// One activation record: interp::ExecFrame, pooled by the run's
/// ExecContext so recursive calls stop malloc-thrashing across the
/// verifier's many re-executions.
using Frame = ExecFrame;

/// The mutable interpretation engine for a single run. All reusable
/// per-run state (shadow memory, instance counters, the frame freelist)
/// lives in the caller-provided ExecContext; the engine itself only owns
/// the trace it is building.
class Engine {
public:
  Engine(const Program &Prog, const analysis::StaticAnalysis &SA,
         const std::vector<int64_t> &Input, const Interpreter::Options &Opts,
         ExecContext &Ctx)
      : Prog(Prog), SA(SA), Input(Input), Opts(Opts), Ctx(Ctx),
        GlobalMem(Ctx.GlobalMem), GlobalLastDef(Ctx.GlobalLastDef),
        InstCount(Ctx.InstCount), Tracing(Opts.Trace) {
    Ctx.beginRun(Prog.statements().size(), Prog.globalSlots());
    Trace.Steps.reserve(Ctx.stepsHint());
  }

  ExecutionTrace run() {
    initGlobals();
    if (Trace.Exit == ExitReason::Finished) {
      Frame Main = makeFrame(*Prog.function(Prog.mainFunction()), InvalidId);
      Flow F = execBody(Prog.function(Prog.mainFunction())->body(), Main);
      if (F == Flow::Return || F == Flow::Normal)
        Trace.ExitValue = Main.RetVal;
      Ctx.recycleFrame(std::move(Main));
    }
    Ctx.noteTraceSize(Trace.Steps.size());
    return std::move(Trace);
  }

private:
  const Program &Prog;
  const analysis::StaticAnalysis &SA;
  const std::vector<int64_t> &Input;
  const Interpreter::Options &Opts;
  ExecContext &Ctx;

  ExecutionTrace Trace;
  std::vector<int64_t> &GlobalMem;
  std::vector<TraceIdx> &GlobalLastDef;
  std::vector<uint32_t> &InstCount;
  size_t InputCursor = 0;
  uint64_t FrameCounter = 0;
  uint64_t StepCount = 0;
  bool Halted = false;
  bool Tracing;

  //===--------------------------------------------------------------------===//
  // Trace recording helpers
  //===--------------------------------------------------------------------===//

  /// Starts a StepRecord for one execution of \p S in \p F, resolving the
  /// dynamic control-dependence parent. Returns the record's index, or
  /// InvalidId in non-tracing runs (which only count steps).
  TraceIdx beginStep(const Stmt *S, Frame &F) {
    ++InstCount[S->id()];
    if (++StepCount > Opts.MaxSteps)
      halt(ExitReason::StepLimit);
    if (!Tracing)
      return InvalidId;
    StepRecord Rec;
    Rec.Stmt = S->id();
    Rec.InstanceNo = InstCount[S->id()];
    Rec.CdParent = resolveCdParent(S->id(), F);
    Trace.Steps.push_back(std::move(Rec));
    TraceIdx Idx = static_cast<TraceIdx>(Trace.Steps.size() - 1);
    if (S->isPredicate())
      F.LastPredInstance[S->id()] = Idx;
    return Idx;
  }

  TraceIdx resolveCdParent(StmtId S, const Frame &F) const {
    TraceIdx Best = InvalidId;
    for (const auto &Parent : SA.cdParents(S)) {
      auto It = F.LastPredInstance.find(Parent.Pred);
      if (It == F.LastPredInstance.end())
        continue;
      if (Best == InvalidId || It->second > Best)
        Best = It->second;
    }
    return Best != InvalidId ? Best : F.CallSite;
  }

  /// Applies an active value perturbation at this definition instance.
  int64_t maybePerturb(StmtId Sid, TraceIdx Rec, int64_t Value) {
    if (Opts.Perturb && Opts.Perturb->Stmt == Sid &&
        Opts.Perturb->InstanceNo == InstCount[Sid]) {
      Trace.SwitchedStep = Rec;
      return Opts.Perturb->Value;
    }
    return Value;
  }

  void halt(ExitReason Reason) {
    if (!Halted) {
      Halted = true;
      Trace.Exit = Reason;
    }
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  void initGlobals() {
    // GlobalMem / GlobalLastDef / InstCount were reset by beginRun().
    for (VarDeclStmt *G : Prog.globals()) {
      const VarInfo &Info = Prog.variable(G->var());
      TraceIdx Idx = InvalidId;
      ++InstCount[G->id()];
      if (Tracing) {
        StepRecord Rec;
        Rec.Stmt = G->id();
        Rec.InstanceNo = InstCount[G->id()];
        Trace.Steps.push_back(std::move(Rec));
        Idx = static_cast<TraceIdx>(Trace.Steps.size() - 1);
      }
      if (Info.isArray())
        continue; // Array elements start as undefined zeros.
      int64_t Init = 0;
      if (G->init()) {
        [[maybe_unused]] bool IsConst = evaluateConstant(G->init(), Init);
        assert(IsConst && "non-constant global initializer survived Sema");
      }
      store(MemLoc::global(Info.Slot), G->var(), Init, Idx);
    }
  }

  /// Writes \p Value to \p Loc on behalf of instance \p Writer and records
  /// the definition (tracing runs only).
  void store(MemLoc Loc, VarId Var, int64_t Value, TraceIdx Writer) {
    if (Loc.isGlobal()) {
      GlobalMem[Loc.slot()] = Value;
      if (Tracing)
        GlobalLastDef[Loc.slot()] = Writer;
    }
    if (Writer != InvalidId)
      Trace.Steps[Writer].Defs.push_back({Loc, Var, Value});
  }

  void storeFrame(Frame &F, uint32_t Slot, VarId Var, int64_t Value,
                  TraceIdx Writer) {
    F.Mem[Slot] = Value;
    if (Tracing)
      F.LastDef[Slot] = Writer;
    if (Writer != InvalidId)
      Trace.Steps[Writer].Defs.push_back(
          {MemLoc::frame(F.Serial, Slot), Var, Value});
  }

  /// Reads a location, recording the use on instance \p Reader.
  int64_t load(Frame &F, const VarInfo &Info, uint32_t SlotOffset, VarId Var,
               ExprId LoadExpr, TraceIdx Reader) {
    int64_t Value;
    MemLoc Loc;
    TraceIdx Def;
    if (Info.isGlobal()) {
      uint32_t Slot = Info.Slot + SlotOffset;
      Loc = MemLoc::global(Slot);
      Value = GlobalMem[Slot];
      Def = Tracing ? GlobalLastDef[Slot] : InvalidId;
    } else {
      uint32_t Slot = Info.Slot + SlotOffset;
      Loc = MemLoc::frame(F.Serial, Slot);
      Value = F.Mem[Slot];
      Def = Tracing ? F.LastDef[Slot] : InvalidId;
    }
    if (Reader != InvalidId)
      Trace.Steps[Reader].Uses.push_back({Loc, Def, LoadExpr, Var, Value});
    return Value;
  }

  Frame makeFrame(const Function &Func, TraceIdx CallSite) {
    Frame F = Ctx.takeFrame();
    F.Serial = ++FrameCounter;
    F.Func = &Func;
    F.Mem.assign(Func.frameSlots(), 0);
    F.LastDef.assign(Func.frameSlots(), InvalidId);
    F.CallSite = CallSite;
    return F;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  int64_t evalExpr(const Expr *E, Frame &F, TraceIdx Rec) {
    if (Halted)
      return 0;
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case Expr::Kind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      const VarInfo &Info = Prog.variable(Ref->var());
      return load(F, Info, 0, Ref->var(), Ref->id(), Rec);
    }
    case Expr::Kind::ArrayRef: {
      const auto *Ref = cast<ArrayRefExpr>(E);
      int64_t Index = evalExpr(Ref->index(), F, Rec);
      if (Halted)
        return 0;
      const VarInfo &Info = Prog.variable(Ref->var());
      if (Index < 0 || Index >= Info.ArraySize) {
        halt(ExitReason::RuntimeError);
        return 0;
      }
      return load(F, Info, static_cast<uint32_t>(Index), Ref->var(), Ref->id(),
                  Rec);
    }
    case Expr::Kind::Input: {
      if (InputCursor < Input.size())
        return Input[InputCursor++];
      return -1;
    }
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E), F, Rec);
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t Sub = evalExpr(U->sub(), F, Rec);
      switch (U->op()) {
      case UnaryOp::Neg:
        return wrapNeg(Sub);
      case UnaryOp::Not:
        return Sub == 0 ? 1 : 0;
      }
      return 0;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Short-circuit evaluation for && and ||.
      if (B->op() == BinaryOp::And) {
        int64_t L = evalExpr(B->lhs(), F, Rec);
        if (Halted || L == 0)
          return 0;
        return evalExpr(B->rhs(), F, Rec) != 0 ? 1 : 0;
      }
      if (B->op() == BinaryOp::Or) {
        int64_t L = evalExpr(B->lhs(), F, Rec);
        if (Halted)
          return 0;
        if (L != 0)
          return 1;
        return evalExpr(B->rhs(), F, Rec) != 0 ? 1 : 0;
      }
      int64_t L = evalExpr(B->lhs(), F, Rec);
      int64_t R = evalExpr(B->rhs(), F, Rec);
      if (Halted)
        return 0;
      switch (B->op()) {
      case BinaryOp::Add:
        return wrapAdd(L, R);
      case BinaryOp::Sub:
        return wrapSub(L, R);
      case BinaryOp::Mul:
        return wrapMul(L, R);
      case BinaryOp::Div:
        if (R == 0 || (L == INT64_MIN && R == -1)) {
          halt(ExitReason::RuntimeError);
          return 0;
        }
        return L / R;
      case BinaryOp::Mod:
        if (R == 0 || (L == INT64_MIN && R == -1)) {
          halt(ExitReason::RuntimeError);
          return 0;
        }
        return L % R;
      case BinaryOp::Eq:
        return L == R;
      case BinaryOp::Ne:
        return L != R;
      case BinaryOp::Lt:
        return L < R;
      case BinaryOp::Le:
        return L <= R;
      case BinaryOp::Gt:
        return L > R;
      case BinaryOp::Ge:
        return L >= R;
      case BinaryOp::And:
      case BinaryOp::Or:
        break; // Handled above.
      }
      return 0;
    }
    }
    return 0;
  }

  int64_t evalCall(const CallExpr *Call, Frame &F, TraceIdx Rec) {
    const Function &Callee = *Prog.function(Call->callee());
    std::vector<int64_t> ArgValues;
    ArgValues.reserve(Call->args().size());
    for (const Expr *Arg : Call->args())
      ArgValues.push_back(evalExpr(Arg, F, Rec));
    if (Halted)
      return 0;

    Frame Inner = makeFrame(Callee, Rec);
    // Parameter passing: the call-site instance defines the parameter
    // slots of the fresh frame, so the callee's parameter reads data-
    // depend on the argument computation.
    for (size_t I = 0; I < Callee.params().size(); ++I) {
      VarId Param = Callee.params()[I];
      const VarInfo &Info = Prog.variable(Param);
      storeFrame(Inner, Info.Slot, Param, ArgValues[I], Rec);
    }

    execBody(Callee.body(), Inner);
    if (Halted) {
      Ctx.recycleFrame(std::move(Inner));
      return 0;
    }

    // The return-value read: data-depends on the executed return.
    if (Rec != InvalidId)
      Trace.Steps[Rec].Uses.push_back({MemLoc::retVal(Inner.Serial),
                                       Inner.RetValDef, Call->id(),
                                       /*Var=*/InvalidId, Inner.RetVal});
    int64_t RetVal = Inner.RetVal;
    Ctx.recycleFrame(std::move(Inner));
    return RetVal;
  }

  //===--------------------------------------------------------------------===//
  // Statement execution
  //===--------------------------------------------------------------------===//

  Flow execBody(const std::vector<Stmt *> &Body, Frame &F) {
    for (Stmt *S : Body) {
      Flow Result = execStmt(S, F);
      if (Result != Flow::Normal)
        return Result;
    }
    return Flow::Normal;
  }

  /// Evaluates the condition of predicate instance \p Rec, applying the
  /// requested switch when this is the targeted instance.
  bool evalPredicate(const Expr *Cond, Frame &F, TraceIdx Rec, StmtId Sid) {
    bool Taken = evalExpr(Cond, F, Rec) != 0;
    if (Opts.Switch && Opts.Switch->Pred == Sid &&
        Opts.Switch->InstanceNo == InstCount[Sid]) {
      Taken = !Taken;
      Trace.SwitchedStep = Rec;
    }
    if (Rec != InvalidId) {
      StepRecord &Step = Trace.Steps[Rec];
      Step.BranchTaken = Taken ? 1 : 0;
      Step.Value = Taken;
    }
    return Taken;
  }

  Flow execStmt(Stmt *S, Frame &F) {
    if (Halted)
      return Flow::Halt;
    switch (S->kind()) {
    case Stmt::Kind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      const VarInfo &Info = Prog.variable(Decl->var());
      if (Info.isArray())
        return Halted ? Flow::Halt : Flow::Normal;
      int64_t Value = Decl->init() ? evalExpr(Decl->init(), F, Rec) : 0;
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), Decl->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, Decl->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      int64_t Value = evalExpr(A->value(), F, Rec);
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      const VarInfo &Info = Prog.variable(A->var());
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), A->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, A->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::ArrayAssign: {
      const auto *A = cast<ArrayAssignStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      int64_t Index = evalExpr(A->index(), F, Rec);
      int64_t Value = evalExpr(A->value(), F, Rec);
      if (Halted)
        return Flow::Halt;
      const VarInfo &Info = Prog.variable(A->var());
      if (Index < 0 || Index >= Info.ArraySize) {
        halt(ExitReason::RuntimeError);
        return Flow::Halt;
      }
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      uint32_t Slot = Info.Slot + static_cast<uint32_t>(Index);
      if (Info.isGlobal())
        store(MemLoc::global(Slot), A->var(), Value, Rec);
      else
        storeFrame(F, Slot, A->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      bool Taken = evalPredicate(If->cond(), F, Rec, S->id());
      if (Halted)
        return Flow::Halt;
      return execBody(Taken ? If->thenBody() : If->elseBody(), F);
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      while (true) {
        TraceIdx Rec = beginStep(S, F);
        bool Taken = evalPredicate(W->cond(), F, Rec, S->id());
        if (Halted)
          return Flow::Halt;
        if (!Taken)
          return Flow::Normal;
        Flow Result = execBody(W->body(), F);
        if (Result == Flow::Break)
          return Flow::Normal;
        if (Result == Flow::Return || Result == Flow::Halt)
          return Result;
        // Normal and Continue both re-test the condition.
      }
    }
    case Stmt::Kind::Break:
      beginStep(S, F);
      return Halted ? Flow::Halt : Flow::Break;
    case Stmt::Kind::Continue:
      beginStep(S, F);
      return Halted ? Flow::Halt : Flow::Continue;
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      int64_t Value = R->value() ? evalExpr(R->value(), F, Rec) : 0;
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      F.RetVal = Value;
      F.RetValDef = Rec;
      if (Rec != InvalidId) {
        Trace.Steps[Rec].Value = Value;
        Trace.Steps[Rec].Defs.push_back(
            {MemLoc::retVal(F.Serial), /*Var=*/InvalidId, Value});
      }
      return Flow::Return;
    }
    case Stmt::Kind::Print: {
      const auto *P = cast<PrintStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      for (size_t I = 0; I < P->args().size(); ++I) {
        int64_t Value = evalExpr(P->args()[I], F, Rec);
        if (Halted)
          return Flow::Halt;
        if (I == 0 && Rec != InvalidId)
          Trace.Steps[Rec].Value = Value;
        Trace.Outputs.push_back(
            {Rec, static_cast<uint32_t>(I), P->args()[I]->id(), Value});
      }
      return Flow::Normal;
    }
    case Stmt::Kind::CallStmt: {
      TraceIdx Rec = beginStep(S, F);
      evalCall(cast<CallStmtNode>(S)->call(), F, Rec);
      return Halted ? Flow::Halt : Flow::Normal;
    }
    }
    return Flow::Normal;
  }
};

} // namespace

Interpreter::Interpreter(const Program &Prog,
                         const analysis::StaticAnalysis &Analysis,
                         support::StatsRegistry *Stats)
    : Prog(Prog), Analysis(Analysis) {
  assert(isValidId(Prog.mainFunction()) && "program must be Sema-checked");
  if (Stats) {
    CRuns = &Stats->counter("interp.runs");
    CSwitchedRuns = &Stats->counter("interp.switched_runs");
    CSteps = &Stats->counter("interp.steps");
    COutputs = &Stats->counter("interp.outputs");
    CAborts = &Stats->counter("interp.aborted_runs");
    TRunTime = &Stats->timer("interp.run_time");
  }
}

ExecutionTrace Interpreter::run(const std::vector<int64_t> &Input,
                                const Options &Opts) const {
  ExecContext Ctx;
  return run(Input, Opts, Ctx);
}

ExecutionTrace Interpreter::run(const std::vector<int64_t> &Input,
                                const Options &Opts, ExecContext &Ctx) const {
  support::ScopedTimer Timed(TRunTime);
  Engine E(Prog, Analysis, Input, Opts, Ctx);
  ExecutionTrace T = E.run();
  if (CRuns) {
    CRuns->add();
    if (Opts.Switch)
      CSwitchedRuns->add();
    CSteps->add(T.size()); // Traced instances; plain runs record nothing.
    COutputs->add(T.Outputs.size());
    if (T.Exit != ExitReason::Finished)
      CAborts->add();
  }
  return T;
}

ExecutionTrace Interpreter::runSwitched(const std::vector<int64_t> &Input,
                                        SwitchSpec Spec,
                                        uint64_t MaxSteps) const {
  Options Opts;
  Opts.MaxSteps = MaxSteps;
  Opts.Switch = Spec;
  return run(Input, Opts);
}
