//===-- interp/Interpreter.cpp - Tracing interpreter -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::lang;

namespace {

/// Two's-complement wrapping arithmetic: Siml semantics define + - * to
/// wrap (like hardware), avoiding undefined behaviour in the host.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

/// Statement-level control flow outcome.
enum class Flow { Normal, Break, Continue, Return, Halt };

/// Autotuned checkpoint strides never place snapshots closer together
/// than this many executed steps on average: below that the splice
/// savings cannot amortize even a delta-encoded snapshot's cost.
constexpr size_t MinSpacingSteps = 64;

/// One activation record: interp::ExecFrame, pooled by the run's
/// ExecContext so recursive calls stop malloc-thrashing across the
/// verifier's many re-executions.
using Frame = ExecFrame;

/// The mutable interpretation engine for a single run. All reusable
/// per-run state (shadow memory, instance counters, the frame freelist)
/// lives in the caller-provided ExecContext; the engine itself only owns
/// the trace it is building.
class Engine {
public:
  Engine(const Program &Prog, const analysis::StaticAnalysis &SA,
         const std::vector<int64_t> &Input, const Interpreter::Options &Opts,
         ExecContext &Ctx)
      : Prog(Prog), SA(SA), Input(Input), Opts(Opts), Ctx(Ctx),
        GlobalMem(Ctx.GlobalMem), GlobalLastDef(Ctx.GlobalLastDef),
        InstCount(Ctx.InstCount), Tracing(Opts.Trace),
        Collecting(Opts.Trace && Opts.Checkpoints && Opts.Checkpoints->Store &&
                   !Opts.Checkpoints->Sites.empty()),
        Capturing(Opts.Trace && Opts.SwitchedCapture != nullptr),
        Probing(Opts.Trace && Opts.Reconverge != nullptr &&
                !Opts.Reconverge->Sites.empty()),
        Mirror(Collecting || Capturing || Probing),
        RequiredDecisions((Opts.Switch ? 1u : 0u) + (Opts.Perturb ? 1u : 0u) +
                          static_cast<unsigned>(Opts.Decisions.size())) {
    Ctx.beginRun(Prog.statements().size(), Prog.globalSlots());
    Trace.Steps.reserve(Ctx.stepsHint());
  }

  ExecutionTrace run() {
    initGlobals();
    if (Trace.Exit == ExitReason::Finished) {
      Frame Main = makeFrame(*Prog.function(Prog.mainFunction()), InvalidId);
      if (Mirror)
        Cont.push_back({&Main, InvalidId, 0});
      Flow F = execBody(Prog.function(Prog.mainFunction())->body(), Main);
      if (Mirror)
        Cont.pop_back();
      if (F == Flow::Return || F == Flow::Normal)
        Trace.ExitValue = Main.RetVal;
      Ctx.recycleFrame(std::move(Main));
    }
    Ctx.noteTraceSize(Trace.Steps.size());
    return std::move(Trace);
  }

  /// Resumes the checkpointed execution, splicing the prefix of \p From
  /// (the trace of the run that captured \p CP) in place of re-executing
  /// it. Byte-identical to a full run() whose switch/perturbation targets
  /// lie at or after CP.Index -- see docs/checkpointing.md.
  ExecutionTrace resume(const Checkpoint &CP, const ExecutionTrace &From) {
    assert(Tracing && "resume requires a tracing run");
    assert(!Collecting && "checkpoints are collected by full runs only");
    assert(CP.Index <= From.Steps.size());
    assert(CP.OutputCount <= From.Outputs.size());
    assert(!CP.Frames.empty());

    // Splice: the capturing run's prefix is byte-identical to what this
    // run would have produced (determinism), except for the records of
    // call statements still active at capture time, which completed later
    // in From -- overwrite those with their as-of-capture copies.
    Trace.Steps.reserve(
        std::max(Ctx.stepsHint(), static_cast<size_t>(CP.Index)));
    Trace.Steps.assign(From.Steps.begin(), From.Steps.begin() + CP.Index);
    Trace.Outputs.assign(From.Outputs.begin(),
                         From.Outputs.begin() + CP.OutputCount);
    for (const CheckpointFrame &CF : CP.Frames)
      if (CF.PendingRec != InvalidId)
        Trace.Steps[CF.PendingRec] = CF.PendingSnapshot;

    // Restore the interpreter state (beginRun() reset it in the ctor).
    GlobalMem = CP.GlobalMem;
    GlobalLastDef = CP.GlobalLastDef;
    InstCount = CP.InstCount;
    InputCursor = CP.InputCursor;
    StepCount = CP.StepCount;
    FrameCounter = CP.FrameCounter;
    // Input-independence watermark: the spliced prefix read input iff the
    // capture was not input-independent; carry the capturing run's first-
    // read index over in that case so the resumed trace matches a full
    // replay byte for byte.
    InputSeen = !CP.InputIndependent;
    if (From.FirstInputStep != InvalidId && From.FirstInputStep < CP.Index)
      Trace.FirstInputStep = From.FirstInputStep;
    // Divergence-keyed resumes: the snapshot already applied these forced
    // decisions (their instance counters have passed, so they cannot
    // re-fire), and the capturing run's divergence record lies in the
    // spliced prefix.
    Applied.assign(CP.Divergence.begin(), CP.Divergence.end());
    if (From.SwitchedStep != InvalidId && From.SwitchedStep < CP.Index)
      Trace.SwitchedStep = From.SwitchedStep;
    LastCaptureStep = StepCount;

    Frame Main = CP.Frames.front().State;
    if (Mirror)
      Cont.push_back({&Main, InvalidId, 0});
    Flow F = resumeFrame(CP, /*Level=*/0, Main);
    if (Mirror)
      Cont.pop_back();
    if (F == Flow::Return || F == Flow::Normal)
      Trace.ExitValue = Main.RetVal;
    Ctx.recycleFrame(std::move(Main));
    Ctx.noteTraceSize(Trace.Steps.size());
    return std::move(Trace);
  }

private:
  const Program &Prog;
  const analysis::StaticAnalysis &SA;
  const std::vector<int64_t> &Input;
  const Interpreter::Options &Opts;
  ExecContext &Ctx;

  ExecutionTrace Trace;
  std::vector<int64_t> &GlobalMem;
  std::vector<TraceIdx> &GlobalLastDef;
  std::vector<uint32_t> &InstCount;
  size_t InputCursor = 0;
  /// True once any input() expression has been evaluated (even one that
  /// read past the end of the input vector): everything before that
  /// instant is a function of the program alone. InputCursor == 0 is not
  /// equivalent -- an exhausted read returns -1 without moving the cursor
  /// yet still makes the execution input-dependent.
  bool InputSeen = false;
  uint64_t FrameCounter = 0;
  uint64_t StepCount = 0;
  bool Halted = false;
  /// True once a reconvergence probe spliced the original suffix: the
  /// halted statement was never executed, so it must not match a switch.
  bool Spliced = false;
  bool Tracing;

  //===--------------------------------------------------------------------===//
  // Checkpoint collection state. Engaged only when Opts.Checkpoints names
  // a non-empty plan; otherwise every `if (Collecting)` below is a single
  // never-taken branch on a constant, so ordinary runs pay nothing.
  //===--------------------------------------------------------------------===//

  /// One live activation on the host stack, mirrored so a capture can
  /// walk the continuation without unwinding.
  struct ContLevel {
    Frame *F;
    /// The call-site record that created this frame (InvalidId for main).
    TraceIdx PendingRec;
    /// Index of this frame's first entry in Path.
    size_t PathStart;
  };

  const bool Collecting;
  /// Switched-run reuse (SwitchedRunStore.h): capture divergence-keyed
  /// snapshots on this run / probe for reconvergence with the original
  /// trace. Either implies the continuation mirror below is maintained.
  const bool Capturing;
  const bool Probing;
  /// Maintain Cont/Path/DirtyCalls: any feature that needs to describe or
  /// compare the live continuation.
  const bool Mirror;
  /// Forced alterations this run must apply (switch and/or perturbation);
  /// probes and switched captures only engage once all have fired.
  const unsigned RequiredDecisions;
  /// The decisions applied so far, in order (the divergence key of any
  /// snapshot captured now). Pre-seeded from Checkpoint::Divergence on
  /// divergence-keyed resumes.
  std::vector<SwitchDecision> Applied;
  /// StepCount at the last applied decision or switched capture; paces
  /// SwitchedCapturePlan::SpacingSteps.
  uint64_t LastCaptureStep = 0;
  /// Cursor into Opts.Reconverge->Sites (ascending by CP->Index), so the
  /// per-step probe check is amortized O(1).
  size_t RecCursor = 0;
  size_t NextSite = 0;
  /// Stride autotuning (CheckpointPlan::AutoBudgetBytes): chosen after
  /// the first successful capture, then applied by skipping
  /// AutoStride - 1 clean sites between snapshots.
  unsigned AutoStride = 0;
  unsigned AutoCountdown = 0;
  /// Number of suspended calls that are not statement-root calls; while
  /// non-zero, a capture cannot describe the continuation and planned
  /// sites are skipped.
  unsigned DirtyCalls = 0;
  /// Set by execStmt just before evaluating a statement whose root
  /// expression is exactly a call; consumed by evalCall.
  bool NextCallClean = false;
  /// The flattened descent path across all live frames; ContLevel's
  /// PathStart partitions it per frame.
  std::vector<ResumeEntry> Path;
  std::vector<ContLevel> Cont;

  //===--------------------------------------------------------------------===//
  // Trace recording helpers
  //===--------------------------------------------------------------------===//

  /// Collection hook, called at the top of beginStep: if the next record
  /// index is a planned site and every suspended call is clean, snapshot
  /// the full interpreter state. Capturing *before* the instance-count
  /// bump means a resumed run re-executes this statement, so a switch
  /// targeting this predicate instance triggers naturally.
  void maybeCapture(const Stmt *S) {
    CheckpointPlan &Plan = *Opts.Checkpoints;
    const TraceIdx Here = static_cast<TraceIdx>(Trace.Steps.size());
    while (NextSite < Plan.Sites.size() && Plan.Sites[NextSite] < Here)
      ++NextSite;
    if (NextSite >= Plan.Sites.size() || Plan.Sites[NextSite] != Here)
      return;
    ++NextSite;
    if (DirtyCalls > 0) {
      // A dirty attempt does not consume the autotuner's countdown: the
      // thinning is over *capturable* sites, so the chosen density holds
      // regardless of where dirty calls fall.
      ++Plan.SkippedDirty;
      return;
    }
    if (Plan.AutoBudgetBytes && AutoStride != 0) {
      if (AutoCountdown > 0) {
        --AutoCountdown; // Thinned by the autotuner; not a dirty skip.
        return;
      }
      AutoCountdown = AutoStride - 1;
    }
    assert(S->isPredicate() && "checkpoint sites must be predicate instances");
    (void)S;
    std::shared_ptr<Checkpoint> CP = makeSnapshot();
    if (Plan.AutoBudgetBytes && AutoStride == 0) {
      // First successful capture: size the stride so that roughly
      // 2x AutoBudgetBytes of raw snapshots get attempted (the LRU and
      // the delta encoder keep the resident set under the real budget
      // while switched runs lean on nearest-dominating resume), capped
      // below by a minimum average step spacing between snapshots.
      // Deterministic: depends only on (program, input, plan).
      const size_t PerSnap = std::max<size_t>(1, CP->bytes());
      const size_t Target =
          std::max<size_t>(1, 2 * Plan.AutoBudgetBytes / PerSnap);
      const size_t NumSites = std::max<size_t>(1, Plan.Sites.size());
      const size_t ByBudget = (NumSites + Target - 1) / Target;
      const size_t AvgSpacing =
          std::max<size_t>(1, Plan.TraceLength / NumSites);
      const size_t BySpacing =
          (MinSpacingSteps + AvgSpacing - 1) / AvgSpacing;
      AutoStride = static_cast<unsigned>(
          std::max<size_t>(1, std::max(ByBudget, BySpacing)));
      Plan.AutoStride = AutoStride;
      AutoCountdown = AutoStride - 1;
    }
    if (Plan.Share && CP->InputIndependent &&
        Plan.Share->promote(CP, Plan.ShareHash, Plan.ShareProgram,
                            Plan.ShareMaxSteps))
      ++Plan.Promoted;
    Plan.Store->insert(std::move(CP));
    ++Plan.Collected;
  }

  /// Snapshots the full interpreter state at the current (clean)
  /// beginStep instant -- shared by original-run collection and switched-
  /// run capture. Requires DirtyCalls == 0 and the Cont/Path mirror.
  std::shared_ptr<Checkpoint> makeSnapshot() const {
    auto CP = std::make_shared<Checkpoint>();
    CP->Index = static_cast<TraceIdx>(Trace.Steps.size());
    CP->InputCursor = InputCursor;
    CP->StepCount = StepCount;
    CP->FrameCounter = FrameCounter;
    CP->OutputCount = Trace.Outputs.size();
    CP->InputIndependent = !InputSeen;
    CP->GlobalMem = GlobalMem;
    CP->GlobalLastDef = GlobalLastDef;
    CP->InstCount = InstCount;
    CP->Frames.reserve(Cont.size());
    for (size_t L = 0; L < Cont.size(); ++L) {
      CheckpointFrame CF;
      CF.State = *Cont[L].F;
      size_t PathEnd =
          L + 1 < Cont.size() ? Cont[L + 1].PathStart : Path.size();
      CF.Path.assign(Path.begin() + Cont[L].PathStart, Path.begin() + PathEnd);
      if (L + 1 < Cont.size()) {
        CF.PendingRec = Cont[L + 1].PendingRec;
        CF.PendingSnapshot = Trace.Steps[CF.PendingRec];
      }
      CP->Frames.push_back(std::move(CF));
    }
    return CP;
  }

  /// Switched-run capture hook: once every forced decision has fired,
  /// snapshot at paced predicate instances, tagging each snapshot with
  /// the run's divergence key.
  void maybeCaptureSwitched(const Stmt *S) {
    SwitchedCapturePlan &Plan = *Opts.SwitchedCapture;
    if (Applied.size() < RequiredDecisions ||
        Plan.Captured.size() >= Plan.MaxSnapshots || !S->isPredicate())
      return;
    if (StepCount < LastCaptureStep + Plan.SpacingSteps)
      return;
    if (DirtyCalls > 0) {
      ++Plan.SkippedDirty;
      return;
    }
    std::shared_ptr<Checkpoint> CP = makeSnapshot();
    CP->Divergence = Applied;
    Plan.Captured.push_back(std::move(CP));
    LastCaptureStep = StepCount;
  }

  /// Reconvergence probe (see align/Reconverge.h for the construction and
  /// the soundness argument). Called at the top of beginStep, before the
  /// instance-count bump. Returns true after splicing the rest of the
  /// original trace -- the caller must not execute the statement.
  bool maybeReconverge(const Stmt *S, Frame &F) {
    const ReconvergePlan &Plan = *Opts.Reconverge;
    const TraceIdx Here = static_cast<TraceIdx>(Trace.Steps.size());
    while (RecCursor < Plan.Sites.size() &&
           Plan.Sites[RecCursor].CP->Index < Here)
      ++RecCursor;
    if (RecCursor >= Plan.Sites.size() ||
        Plan.Sites[RecCursor].CP->Index != Here)
      return false;
    if (Applied.size() < RequiredDecisions)
      return false; // A pending decision still has to fire; keep going.
    const ReconvergeSite &Site = Plan.Sites[RecCursor];
    const Checkpoint &CP = *Site.CP;
    const ExecutionTrace &Orig = *Plan.Original;
    ++Trace.ReconvergeProbes;

    // Cheap gates first. Statement identity + the scalar state, then the
    // region identity: the next record's dynamic control-dependence
    // parent must be the same instance the original's was (the site and
    // the probe sit in the same RegionTree region).
    if (DirtyCalls != 0 || S->id() != Site.Stmt)
      return false;
    if (InstCount[S->id()] + 1 != Site.InstanceNo)
      return false;
    if (StepCount != CP.StepCount || InputCursor != CP.InputCursor ||
        FrameCounter != CP.FrameCounter ||
        Trace.Outputs.size() != CP.OutputCount ||
        InputSeen == CP.InputIndependent)
      return false;
    if (CP.StepCount + (Orig.Steps.size() - Here) > Opts.MaxSteps)
      return false; // The spliced run would have tripped the step budget.
    if (Cont.size() != CP.Frames.size())
      return false;
    if (resolveCdParent(S->id(), F) != Site.CdParent)
      return false;

    // Deep state comparison: live frames exactly; instance counters and
    // global store only where the suffix can observe them.
    for (size_t L = 0; L < Cont.size(); ++L) {
      if (!(*Cont[L].F == CP.Frames[L].State))
        return false;
      size_t PathEnd =
          L + 1 < Cont.size() ? Cont[L + 1].PathStart : Path.size();
      size_t PathLen = PathEnd - Cont[L].PathStart;
      if (PathLen != CP.Frames[L].Path.size() ||
          !std::equal(Path.begin() + Cont[L].PathStart,
                      Path.begin() + PathEnd, CP.Frames[L].Path.begin()))
        return false;
      if (L + 1 < Cont.size()) {
        if (Cont[L + 1].PendingRec != CP.Frames[L].PendingRec)
          return false;
        if (!(Trace.Steps[Cont[L + 1].PendingRec] ==
              CP.Frames[L].PendingSnapshot))
          return false;
      }
    }
    assert(InstCount.size() == CP.InstCount.size());
    for (size_t W = 0; W < Site.SuffixStmts.size(); ++W) {
      uint64_t Bits = Site.SuffixStmts[W];
      while (Bits) {
        size_t Sid = W * 64 + static_cast<size_t>(__builtin_ctzll(Bits));
        Bits &= Bits - 1;
        if (Sid < InstCount.size() && InstCount[Sid] != CP.InstCount[Sid])
          return false;
      }
    }
    for (size_t W = 0; W < Site.SuffixReads.size(); ++W) {
      uint64_t Bits = Site.SuffixReads[W];
      while (Bits) {
        size_t Slot = W * 64 + static_cast<size_t>(__builtin_ctzll(Bits));
        Bits &= Bits - 1;
        if (Slot < GlobalMem.size() &&
            (GlobalMem[Slot] != CP.GlobalMem[Slot] ||
             GlobalLastDef[Slot] != CP.GlobalLastDef[Slot]))
          return false;
      }
    }

    // Reconverged: from this state, interpretation would reproduce the
    // original suffix byte for byte -- splice it instead. Live frames'
    // pending call records complete during the suffix; the original's
    // completed copies are exactly what interpretation would have written
    // (pending contents were proved equal, and the completion depends
    // only on post-site state, also proved equal).
    for (size_t L = 0; L + 1 < Cont.size(); ++L) {
      TraceIdx PR = Cont[L + 1].PendingRec;
      if (PR != InvalidId)
        Trace.Steps[PR] = Orig.Steps[PR];
    }
    Trace.Steps.insert(Trace.Steps.end(), Orig.Steps.begin() + Here,
                       Orig.Steps.end());
    Trace.Outputs.insert(Trace.Outputs.end(),
                         Orig.Outputs.begin() + CP.OutputCount,
                         Orig.Outputs.end());
    if (Trace.FirstInputStep == InvalidId && Orig.FirstInputStep != InvalidId &&
        Orig.FirstInputStep >= Here)
      Trace.FirstInputStep = Orig.FirstInputStep;
    Trace.ExitValue = Orig.ExitValue;
    Trace.SplicedSuffix = static_cast<TraceIdx>(Orig.Steps.size() - Here);
    Spliced = true;
    halt(ExitReason::Finished); // Plan builder guarantees Orig finished.
    return true;
  }

  /// Starts a StepRecord for one execution of \p S in \p F, resolving the
  /// dynamic control-dependence parent. Returns the record's index, or
  /// InvalidId in non-tracing runs (which only count steps).
  TraceIdx beginStep(const Stmt *S, Frame &F) {
    if (Probing && maybeReconverge(S, F))
      return InvalidId; // Spliced + halted; the statement is not executed.
    if (Collecting)
      maybeCapture(S);
    if (Capturing)
      maybeCaptureSwitched(S);
    ++InstCount[S->id()];
    if (++StepCount > Opts.MaxSteps)
      halt(ExitReason::StepLimit);
    if (!Tracing)
      return InvalidId;
    StepRecord Rec;
    Rec.Stmt = S->id();
    Rec.InstanceNo = InstCount[S->id()];
    Rec.CdParent = resolveCdParent(S->id(), F);
    Trace.Steps.push_back(std::move(Rec));
    TraceIdx Idx = static_cast<TraceIdx>(Trace.Steps.size() - 1);
    if (S->isPredicate())
      F.LastPredInstance[S->id()] = Idx;
    return Idx;
  }

  TraceIdx resolveCdParent(StmtId S, const Frame &F) const {
    TraceIdx Best = InvalidId;
    for (const auto &Parent : SA.cdParents(S)) {
      auto It = F.LastPredInstance.find(Parent.Pred);
      if (It == F.LastPredInstance.end())
        continue;
      if (Best == InvalidId || It->second > Best)
        Best = It->second;
    }
    return Best != InvalidId ? Best : F.CallSite;
  }

  /// Applies an active value perturbation at this definition instance.
  int64_t maybePerturb(StmtId Sid, TraceIdx Rec, int64_t Value) {
    if (Opts.Perturb && Opts.Perturb->Stmt == Sid &&
        Opts.Perturb->InstanceNo == InstCount[Sid]) {
      if (Trace.SwitchedStep == InvalidId)
        Trace.SwitchedStep = Rec;
      noteDecision({Sid, InstCount[Sid], /*Perturb=*/true,
                    Opts.Perturb->Value});
      return Opts.Perturb->Value;
    }
    for (const SwitchDecision &Want : Opts.Decisions)
      if (Want.Perturb && Want.Stmt == Sid &&
          Want.InstanceNo == InstCount[Sid]) {
        if (Trace.SwitchedStep == InvalidId)
          Trace.SwitchedStep = Rec;
        noteDecision(Want);
        return Want.Value;
      }
    return Value;
  }

  /// Records a forced decision the run just applied (feeds the divergence
  /// key and gates captures/probes on "all decisions applied"). Resumed
  /// runs pre-seed Applied from the snapshot, so a decision inherited
  /// that way is not re-recorded.
  void noteDecision(SwitchDecision D) {
    if (std::find(Applied.begin(), Applied.end(), D) == Applied.end()) {
      Applied.push_back(D);
      LastCaptureStep = StepCount;
    }
  }

  void halt(ExitReason Reason) {
    if (!Halted) {
      Halted = true;
      Trace.Exit = Reason;
    }
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  void initGlobals() {
    // GlobalMem / GlobalLastDef / InstCount were reset by beginRun().
    for (VarDeclStmt *G : Prog.globals()) {
      const VarInfo &Info = Prog.variable(G->var());
      TraceIdx Idx = InvalidId;
      ++InstCount[G->id()];
      if (Tracing) {
        StepRecord Rec;
        Rec.Stmt = G->id();
        Rec.InstanceNo = InstCount[G->id()];
        Trace.Steps.push_back(std::move(Rec));
        Idx = static_cast<TraceIdx>(Trace.Steps.size() - 1);
      }
      if (Info.isArray())
        continue; // Array elements start as undefined zeros.
      int64_t Init = 0;
      if (G->init()) {
        [[maybe_unused]] bool IsConst = evaluateConstant(G->init(), Init);
        assert(IsConst && "non-constant global initializer survived Sema");
      }
      store(MemLoc::global(Info.Slot), G->var(), Init, Idx);
    }
  }

  /// Writes \p Value to \p Loc on behalf of instance \p Writer and records
  /// the definition (tracing runs only).
  void store(MemLoc Loc, VarId Var, int64_t Value, TraceIdx Writer) {
    if (Loc.isGlobal()) {
      GlobalMem[Loc.slot()] = Value;
      if (Tracing)
        GlobalLastDef[Loc.slot()] = Writer;
    }
    if (Writer != InvalidId)
      Trace.Steps[Writer].Defs.push_back({Loc, Var, Value});
  }

  void storeFrame(Frame &F, uint32_t Slot, VarId Var, int64_t Value,
                  TraceIdx Writer) {
    F.Mem[Slot] = Value;
    if (Tracing)
      F.LastDef[Slot] = Writer;
    if (Writer != InvalidId)
      Trace.Steps[Writer].Defs.push_back(
          {MemLoc::frame(F.Serial, Slot), Var, Value});
  }

  /// Reads a location, recording the use on instance \p Reader.
  int64_t load(Frame &F, const VarInfo &Info, uint32_t SlotOffset, VarId Var,
               ExprId LoadExpr, TraceIdx Reader) {
    int64_t Value;
    MemLoc Loc;
    TraceIdx Def;
    if (Info.isGlobal()) {
      uint32_t Slot = Info.Slot + SlotOffset;
      Loc = MemLoc::global(Slot);
      Value = GlobalMem[Slot];
      Def = Tracing ? GlobalLastDef[Slot] : InvalidId;
    } else {
      uint32_t Slot = Info.Slot + SlotOffset;
      Loc = MemLoc::frame(F.Serial, Slot);
      Value = F.Mem[Slot];
      Def = Tracing ? F.LastDef[Slot] : InvalidId;
    }
    if (Reader != InvalidId)
      Trace.Steps[Reader].Uses.push_back({Loc, Def, LoadExpr, Var, Value});
    return Value;
  }

  Frame makeFrame(const Function &Func, TraceIdx CallSite) {
    Frame F = Ctx.takeFrame();
    F.Serial = ++FrameCounter;
    F.Func = &Func;
    F.Mem.assign(Func.frameSlots(), 0);
    F.LastDef.assign(Func.frameSlots(), InvalidId);
    F.CallSite = CallSite;
    return F;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  int64_t evalExpr(const Expr *E, Frame &F, TraceIdx Rec) {
    if (Halted)
      return 0;
    switch (E->kind()) {
    case Expr::Kind::IntLit:
      return cast<IntLitExpr>(E)->value();
    case Expr::Kind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      const VarInfo &Info = Prog.variable(Ref->var());
      return load(F, Info, 0, Ref->var(), Ref->id(), Rec);
    }
    case Expr::Kind::ArrayRef: {
      const auto *Ref = cast<ArrayRefExpr>(E);
      int64_t Index = evalExpr(Ref->index(), F, Rec);
      if (Halted)
        return 0;
      const VarInfo &Info = Prog.variable(Ref->var());
      if (Index < 0 || Index >= Info.ArraySize) {
        halt(ExitReason::RuntimeError);
        return 0;
      }
      return load(F, Info, static_cast<uint32_t>(Index), Ref->var(), Ref->id(),
                  Rec);
    }
    case Expr::Kind::Input: {
      if (!InputSeen) {
        InputSeen = true;
        if (Rec != InvalidId)
          Trace.FirstInputStep = Rec;
      }
      if (InputCursor < Input.size())
        return Input[InputCursor++];
      return -1;
    }
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E), F, Rec);
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      int64_t Sub = evalExpr(U->sub(), F, Rec);
      switch (U->op()) {
      case UnaryOp::Neg:
        return wrapNeg(Sub);
      case UnaryOp::Not:
        return Sub == 0 ? 1 : 0;
      }
      return 0;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      // Short-circuit evaluation for && and ||.
      if (B->op() == BinaryOp::And) {
        int64_t L = evalExpr(B->lhs(), F, Rec);
        if (Halted || L == 0)
          return 0;
        return evalExpr(B->rhs(), F, Rec) != 0 ? 1 : 0;
      }
      if (B->op() == BinaryOp::Or) {
        int64_t L = evalExpr(B->lhs(), F, Rec);
        if (Halted)
          return 0;
        if (L != 0)
          return 1;
        return evalExpr(B->rhs(), F, Rec) != 0 ? 1 : 0;
      }
      int64_t L = evalExpr(B->lhs(), F, Rec);
      int64_t R = evalExpr(B->rhs(), F, Rec);
      if (Halted)
        return 0;
      switch (B->op()) {
      case BinaryOp::Add:
        return wrapAdd(L, R);
      case BinaryOp::Sub:
        return wrapSub(L, R);
      case BinaryOp::Mul:
        return wrapMul(L, R);
      case BinaryOp::Div:
        if (R == 0 || (L == INT64_MIN && R == -1)) {
          halt(ExitReason::RuntimeError);
          return 0;
        }
        return L / R;
      case BinaryOp::Mod:
        if (R == 0 || (L == INT64_MIN && R == -1)) {
          halt(ExitReason::RuntimeError);
          return 0;
        }
        return L % R;
      case BinaryOp::Eq:
        return L == R;
      case BinaryOp::Ne:
        return L != R;
      case BinaryOp::Lt:
        return L < R;
      case BinaryOp::Le:
        return L <= R;
      case BinaryOp::Gt:
        return L > R;
      case BinaryOp::Ge:
        return L >= R;
      case BinaryOp::And:
      case BinaryOp::Or:
        break; // Handled above.
      }
      return 0;
    }
    }
    return 0;
  }

  int64_t evalCall(const CallExpr *Call, Frame &F, TraceIdx Rec) {
    bool Clean = false;
    if (Mirror) {
      // Consume the flag here so calls nested in the arguments see false.
      Clean = NextCallClean && Rec != InvalidId;
      NextCallClean = false;
    }
    const Function &Callee = *Prog.function(Call->callee());
    std::vector<int64_t> ArgValues;
    ArgValues.reserve(Call->args().size());
    for (const Expr *Arg : Call->args())
      ArgValues.push_back(evalExpr(Arg, F, Rec));
    if (Halted)
      return 0;

    Frame Inner = makeFrame(Callee, Rec);
    // Parameter passing: the call-site instance defines the parameter
    // slots of the fresh frame, so the callee's parameter reads data-
    // depend on the argument computation.
    for (size_t I = 0; I < Callee.params().size(); ++I) {
      VarId Param = Callee.params()[I];
      const VarInfo &Info = Prog.variable(Param);
      storeFrame(Inner, Info.Slot, Param, ArgValues[I], Rec);
    }

    if (Mirror) {
      if (!Clean)
        ++DirtyCalls;
      Cont.push_back({&Inner, Rec, Path.size()});
    }
    execBody(Callee.body(), Inner);
    if (Mirror) {
      Cont.pop_back();
      if (!Clean)
        --DirtyCalls;
    }
    if (Halted) {
      Ctx.recycleFrame(std::move(Inner));
      return 0;
    }

    // The return-value read: data-depends on the executed return.
    if (Rec != InvalidId)
      Trace.Steps[Rec].Uses.push_back({MemLoc::retVal(Inner.Serial),
                                       Inner.RetValDef, Call->id(),
                                       /*Var=*/InvalidId, Inner.RetVal});
    int64_t RetVal = Inner.RetVal;
    Ctx.recycleFrame(std::move(Inner));
    return RetVal;
  }

  //===--------------------------------------------------------------------===//
  // Statement execution
  //===--------------------------------------------------------------------===//

  Flow execBody(const std::vector<Stmt *> &Body, Frame &F,
                ResumeEntry::Body In = ResumeEntry::Body::Func) {
    if (!Mirror) {
      for (Stmt *S : Body) {
        Flow Result = execStmt(S, F);
        if (Result != Flow::Normal)
          return Result;
      }
      return Flow::Normal;
    }
    // Mirror runs track the descent in Path so a capture can record the
    // continuation (and a probe compare it): one entry per live body,
    // updated per statement.
    size_t Slot = Path.size();
    Path.push_back({In, 0});
    Flow Result = Flow::Normal;
    for (uint32_t I = 0; I < Body.size(); ++I) {
      Path[Slot].Index = I;
      Result = execStmt(Body[I], F);
      if (Result != Flow::Normal)
        break;
    }
    Path.resize(Slot);
    return Result;
  }

  /// Evaluates the condition of predicate instance \p Rec, applying the
  /// requested switch when this is the targeted instance.
  bool evalPredicate(const Expr *Cond, Frame &F, TraceIdx Rec, StmtId Sid) {
    if (Spliced)
      return false; // The un-executed statement after a suffix splice
                    // must not match the switch (its counter never bumped).
    bool Taken = evalExpr(Cond, F, Rec) != 0;
    bool Fire = false;
    SwitchDecision D{Sid, InstCount[Sid], /*Perturb=*/false, /*Value=*/0};
    if (Opts.Switch && Opts.Switch->Pred == Sid &&
        Opts.Switch->InstanceNo == InstCount[Sid]) {
      Fire = true;
    } else {
      for (const SwitchDecision &Want : Opts.Decisions)
        if (!Want.Perturb && Want.Stmt == Sid &&
            Want.InstanceNo == InstCount[Sid]) {
          Fire = true;
          D = Want;
          break;
        }
    }
    if (Fire) {
      Taken = !Taken;
      // First decision wins: the trace's switch marker is the chain's
      // divergence point, where alignment with the original run starts.
      if (Trace.SwitchedStep == InvalidId)
        Trace.SwitchedStep = Rec;
      noteDecision(D);
    }
    if (Rec != InvalidId) {
      StepRecord &Step = Trace.Steps[Rec];
      Step.BranchTaken = Taken ? 1 : 0;
      Step.Value = Taken;
    }
    return Taken;
  }

  Flow execStmt(Stmt *S, Frame &F) {
    if (Halted)
      return Flow::Halt;
    switch (S->kind()) {
    case Stmt::Kind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      const VarInfo &Info = Prog.variable(Decl->var());
      if (Info.isArray())
        return Halted ? Flow::Halt : Flow::Normal;
      if (Mirror && Decl->init() && Decl->init()->kind() == Expr::Kind::Call)
        NextCallClean = true;
      int64_t Value = Decl->init() ? evalExpr(Decl->init(), F, Rec) : 0;
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), Decl->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, Decl->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      if (Mirror && A->value()->kind() == Expr::Kind::Call)
        NextCallClean = true;
      int64_t Value = evalExpr(A->value(), F, Rec);
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      const VarInfo &Info = Prog.variable(A->var());
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), A->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, A->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::ArrayAssign: {
      const auto *A = cast<ArrayAssignStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      int64_t Index = evalExpr(A->index(), F, Rec);
      int64_t Value = evalExpr(A->value(), F, Rec);
      if (Halted)
        return Flow::Halt;
      const VarInfo &Info = Prog.variable(A->var());
      if (Index < 0 || Index >= Info.ArraySize) {
        halt(ExitReason::RuntimeError);
        return Flow::Halt;
      }
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      uint32_t Slot = Info.Slot + static_cast<uint32_t>(Index);
      if (Info.isGlobal())
        store(MemLoc::global(Slot), A->var(), Value, Rec);
      else
        storeFrame(F, Slot, A->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      bool Taken = evalPredicate(If->cond(), F, Rec, S->id());
      if (Halted)
        return Flow::Halt;
      return execBody(Taken ? If->thenBody() : If->elseBody(), F,
                      Taken ? ResumeEntry::Body::Then
                            : ResumeEntry::Body::Else);
    }
    case Stmt::Kind::While:
      return execWhileLoop(S, cast<WhileStmt>(S), F);
    case Stmt::Kind::Break:
      beginStep(S, F);
      return Halted ? Flow::Halt : Flow::Break;
    case Stmt::Kind::Continue:
      beginStep(S, F);
      return Halted ? Flow::Halt : Flow::Continue;
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      if (Mirror && R->value() && R->value()->kind() == Expr::Kind::Call)
        NextCallClean = true;
      int64_t Value = R->value() ? evalExpr(R->value(), F, Rec) : 0;
      if (Halted)
        return Flow::Halt;
      Value = maybePerturb(S->id(), Rec, Value);
      F.RetVal = Value;
      F.RetValDef = Rec;
      if (Rec != InvalidId) {
        Trace.Steps[Rec].Value = Value;
        Trace.Steps[Rec].Defs.push_back(
            {MemLoc::retVal(F.Serial), /*Var=*/InvalidId, Value});
      }
      return Flow::Return;
    }
    case Stmt::Kind::Print: {
      const auto *P = cast<PrintStmt>(S);
      TraceIdx Rec = beginStep(S, F);
      for (size_t I = 0; I < P->args().size(); ++I) {
        int64_t Value = evalExpr(P->args()[I], F, Rec);
        if (Halted)
          return Flow::Halt;
        if (I == 0 && Rec != InvalidId)
          Trace.Steps[Rec].Value = Value;
        Trace.Outputs.push_back(
            {Rec, static_cast<uint32_t>(I), P->args()[I]->id(), Value});
      }
      return Flow::Normal;
    }
    case Stmt::Kind::CallStmt: {
      TraceIdx Rec = beginStep(S, F);
      if (Mirror)
        NextCallClean = true;
      evalCall(cast<CallStmtNode>(S)->call(), F, Rec);
      return Halted ? Flow::Halt : Flow::Normal;
    }
    }
    return Flow::Normal;
  }

  /// The while statement's execution loop, starting (and, on resume,
  /// restarting) at a condition test.
  Flow execWhileLoop(Stmt *S, const WhileStmt *W, Frame &F) {
    while (true) {
      TraceIdx Rec = beginStep(S, F);
      bool Taken = evalPredicate(W->cond(), F, Rec, S->id());
      if (Halted)
        return Flow::Halt;
      if (!Taken)
        return Flow::Normal;
      Flow Result = execBody(W->body(), F, ResumeEntry::Body::Loop);
      if (Result == Flow::Break)
        return Flow::Normal;
      if (Result == Flow::Return || Result == Flow::Halt)
        return Result;
      // Normal and Continue both re-test the condition.
    }
  }

  //===--------------------------------------------------------------------===//
  // Checkpoint resumption
  //===--------------------------------------------------------------------===//

  /// The statement-root call expression of a clean call site.
  static const CallExpr *rootCall(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::CallStmt:
      return cast<CallStmtNode>(S)->call();
    case Stmt::Kind::Assign:
      return cast<CallExpr>(cast<AssignStmt>(S)->value());
    case Stmt::Kind::VarDecl:
      return cast<CallExpr>(cast<VarDeclStmt>(S)->init());
    case Stmt::Kind::Return:
      return cast<CallExpr>(cast<ReturnStmt>(S)->value());
    default:
      return nullptr;
    }
  }

  Flow resumeFrame(const Checkpoint &CP, size_t Level, Frame &F) {
    assert(!CP.Frames[Level].Path.empty() && "active frame without a path");
    return resumePath(CP, Level, F, /*Depth=*/0, F.Func->body());
  }

  /// Re-descends one level of a captured continuation path: finishes the
  /// statement the path points at, then executes the remainder of the
  /// containing body exactly as execBody would have.
  Flow resumePath(const Checkpoint &CP, size_t Level, Frame &F, size_t Depth,
                  const std::vector<Stmt *> &Body) {
    const CheckpointFrame &CF = CP.Frames[Level];
    const ResumeEntry &E = CF.Path[Depth];
    assert(E.Index < Body.size());
    Stmt *S = Body[E.Index];
    const bool Terminal = Depth + 1 == CF.Path.size();

    // Mirror runs rebuild the descent Path exactly as execBody would have
    // it at this point of a full run (captures and probes on resumed runs
    // depend on it).
    size_t Slot = Path.size();
    if (Mirror)
      Path.push_back({E.In, E.Index});

    Flow Result;
    if (Terminal && Level + 1 == CP.Frames.size()) {
      // The statement whose beginStep captured the snapshot: re-execute
      // it outright. A capture at a while condition re-test lands here
      // too -- execWhileLoop via execStmt *is* the remaining work, since
      // the restored instance counters embody the finished iterations.
      Result = execStmt(S, F);
    } else if (Terminal) {
      Result = resumeCallSite(CP, Level, S, F);
    } else {
      const ResumeEntry &Next = CF.Path[Depth + 1];
      switch (S->kind()) {
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        Result = resumePath(CP, Level, F, Depth + 1,
                            Next.In == ResumeEntry::Body::Else
                                ? If->elseBody()
                                : If->thenBody());
        break;
      }
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(S);
        assert(Next.In == ResumeEntry::Body::Loop);
        Result = resumePath(CP, Level, F, Depth + 1, W->body());
        if (Result == Flow::Break)
          Result = Flow::Normal;
        else if (Result == Flow::Normal || Result == Flow::Continue)
          Result = execWhileLoop(S, W, F);
        break;
      }
      default:
        assert(false && "non-compound statement on a continuation path");
        Result = Flow::Halt;
        break;
      }
    }

    if (Result == Flow::Normal) {
      for (size_t I = E.Index + 1; I < Body.size(); ++I) {
        if (Mirror)
          Path[Slot].Index = static_cast<uint32_t>(I);
        Result = execStmt(Body[I], F);
        if (Result != Flow::Normal)
          break;
      }
    }
    if (Mirror)
      Path.resize(Slot);
    return Result;
  }

  /// Finishes a suspended clean call: rebuilds the callee frame, resumes
  /// it, then replicates evalCall's return sequence and the completion of
  /// the call-rooted statement (mirroring the execStmt cases).
  Flow resumeCallSite(const Checkpoint &CP, size_t Level, Stmt *S, Frame &F) {
    const TraceIdx Rec = CP.Frames[Level].PendingRec;
    const CallExpr *Call = rootCall(S);
    assert(Call && "pending call on a non-call-rooted statement");

    Frame Inner = CP.Frames[Level + 1].State;
    // Suspended checkpoint calls are statement-root (clean) calls, so the
    // rebuilt level adds no dirty call.
    if (Mirror)
      Cont.push_back({&Inner, Rec, Path.size()});
    resumeFrame(CP, Level + 1, Inner);
    if (Mirror)
      Cont.pop_back();
    if (Halted) {
      Ctx.recycleFrame(std::move(Inner));
      return Flow::Halt;
    }

    if (Rec != InvalidId)
      Trace.Steps[Rec].Uses.push_back({MemLoc::retVal(Inner.Serial),
                                       Inner.RetValDef, Call->id(),
                                       /*Var=*/InvalidId, Inner.RetVal});
    int64_t Value = Inner.RetVal;
    Ctx.recycleFrame(std::move(Inner));

    switch (S->kind()) {
    case Stmt::Kind::CallStmt:
      return Flow::Normal;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      const VarInfo &Info = Prog.variable(A->var());
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), A->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, A->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::VarDecl: {
      const auto *Decl = cast<VarDeclStmt>(S);
      Value = maybePerturb(S->id(), Rec, Value);
      if (Rec != InvalidId)
        Trace.Steps[Rec].Value = Value;
      const VarInfo &Info = Prog.variable(Decl->var());
      if (Info.isGlobal())
        store(MemLoc::global(Info.Slot), Decl->var(), Value, Rec);
      else
        storeFrame(F, Info.Slot, Decl->var(), Value, Rec);
      return Flow::Normal;
    }
    case Stmt::Kind::Return: {
      Value = maybePerturb(S->id(), Rec, Value);
      F.RetVal = Value;
      F.RetValDef = Rec;
      if (Rec != InvalidId) {
        Trace.Steps[Rec].Value = Value;
        Trace.Steps[Rec].Defs.push_back(
            {MemLoc::retVal(F.Serial), /*Var=*/InvalidId, Value});
      }
      return Flow::Return;
    }
    default:
      assert(false && "pending call on a non-call-rooted statement");
      return Flow::Halt;
    }
  }
};

} // namespace

Interpreter::Interpreter(const Program &Prog,
                         const analysis::StaticAnalysis &Analysis,
                         support::StatsRegistry *Stats)
    : Prog(Prog), Analysis(Analysis) {
  assert(isValidId(Prog.mainFunction()) && "program must be Sema-checked");
  if (Stats) {
    CRuns = &Stats->counter("interp.runs");
    CSwitchedRuns = &Stats->counter("interp.switched_runs");
    CResumedRuns = &Stats->counter("interp.resumed_runs");
    CSplicedSteps = &Stats->counter("interp.spliced_steps");
    CSplicedSuffixSteps = &Stats->counter("interp.spliced_suffix_steps");
    CSteps = &Stats->counter("interp.steps");
    COutputs = &Stats->counter("interp.outputs");
    CAborts = &Stats->counter("interp.aborted_runs");
    TRunTime = &Stats->timer("interp.run_time");
  }
}

ExecutionTrace Interpreter::record(ExecutionTrace T, bool Switched,
                                   bool Resumed, TraceIdx Spliced) const {
  if (CRuns) {
    CRuns->add();
    if (Switched)
      CSwitchedRuns->add();
    if (Resumed) {
      CResumedRuns->add();
      CSplicedSteps->add(Spliced);
    }
    if (T.SplicedSuffix)
      CSplicedSuffixSteps->add(T.SplicedSuffix);
    CSteps->add(T.size()); // Traced instances; plain runs record nothing.
    COutputs->add(T.Outputs.size());
    if (T.Exit != ExitReason::Finished)
      CAborts->add();
  }
  return T;
}

ExecutionTrace Interpreter::run(const std::vector<int64_t> &Input,
                                const Options &Opts) const {
  ExecContext Ctx;
  return run(Input, Opts, Ctx);
}

ExecutionTrace Interpreter::run(const std::vector<int64_t> &Input,
                                const Options &Opts, ExecContext &Ctx) const {
  support::ScopedTimer Timed(TRunTime);
  Engine E(Prog, Analysis, Input, Opts, Ctx);
  return record(E.run(), Opts.Switch.has_value() || !Opts.Decisions.empty(),
                /*Resumed=*/false, 0);
}

ExecutionTrace Interpreter::runFrom(const Checkpoint &CP,
                                    const ExecutionTrace &SpliceFrom,
                                    const std::vector<int64_t> &Input,
                                    const Options &Opts,
                                    ExecContext &Ctx) const {
  support::ScopedTimer Timed(TRunTime);
  Options Local = Opts;
  Local.Checkpoints = nullptr; // Checkpoints are collected by full runs only.
  Engine E(Prog, Analysis, Input, Local, Ctx);
  return record(E.resume(CP, SpliceFrom),
                Local.Switch.has_value() || !Local.Decisions.empty(),
                /*Resumed=*/true, CP.Index);
}

ExecutionTrace Interpreter::runFrom(const Checkpoint &CP,
                                    const ExecutionTrace &SpliceFrom,
                                    const std::vector<int64_t> &Input,
                                    const Options &Opts) const {
  ExecContext Ctx;
  return runFrom(CP, SpliceFrom, Input, Opts, Ctx);
}

ExecutionTrace Interpreter::runSwitched(const std::vector<int64_t> &Input,
                                        SwitchSpec Spec, uint64_t MaxSteps,
                                        ExecContext *Ctx) const {
  Options Opts;
  Opts.MaxSteps = MaxSteps;
  Opts.Switch = Spec;
  if (Ctx)
    return run(Input, Opts, *Ctx);
  return run(Input, Opts);
}

ExecutionTrace
Interpreter::runSwitched(const std::vector<int64_t> &Input,
                         const std::vector<SwitchDecision> &Decisions,
                         uint64_t MaxSteps, ExecContext *Ctx) const {
  Options Opts;
  Opts.MaxSteps = MaxSteps;
  Opts.Decisions = Decisions;
  if (Ctx)
    return run(Input, Opts, *Ctx);
  return run(Input, Opts);
}
