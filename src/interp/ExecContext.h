//===-- interp/ExecContext.h - Reusable execution state ----------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-run mutable interpreter state, extracted from the interpreter so
/// that (a) concurrent switched re-executions share nothing mutable and
/// (b) the allocations a run churns through -- activation records, shadow
/// last-writer tables, instance counters -- are recycled across runs
/// instead of being malloc'd fresh every time. The demand-driven verifier
/// issues thousands of switched re-executions over the same program; an
/// ExecContext turns each run's setup into a handful of O(1)-amortized
/// buffer clears.
///
/// ExecContext is single-threaded: one context serves one run at a time.
/// ExecContextPool is the thread-safe arena handing contexts to parallel
/// verification tasks (acquire returns an RAII lease; releasing returns
/// the context, with its grown buffers, to the freelist).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_EXECCONTEXT_H
#define EOE_INTERP_EXECCONTEXT_H

#include "support/Ids.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace eoe {

namespace lang {
class Function;
}

namespace support {
class StatCounter;
class StatsRegistry;
}

namespace interp {

/// One activation record. Lives here (not in the interpreter's .cpp) so
/// the context can pool frames across runs; the vectors and the map keep
/// their capacity through recycling.
struct ExecFrame {
  uint64_t Serial = 0;
  const lang::Function *Func = nullptr;
  std::vector<int64_t> Mem;
  std::vector<TraceIdx> LastDef;
  int64_t RetVal = 0;
  TraceIdx RetValDef = InvalidId;
  /// The instance of the calling statement; InvalidId for main.
  TraceIdx CallSite = InvalidId;
  /// Most recent instance of each predicate executed in this invocation,
  /// used to resolve dynamic control-dependence parents.
  std::unordered_map<StmtId, TraceIdx> LastPredInstance;

  /// Value equality (delta-encoded checkpoints must decode to exactly the
  /// state they were captured from; see interp/Checkpoint.h).
  bool operator==(const ExecFrame &O) const = default;
};

/// Reusable buffers for one interpreter run. Not thread-safe; lease one
/// per concurrent run from an ExecContextPool.
class ExecContext {
public:
  /// Resets the global-memory and instance-count buffers for a program
  /// with \p StmtCount statements and \p GlobalSlots global memory slots.
  void beginRun(size_t StmtCount, size_t GlobalSlots);

  /// Pops a cleared frame from the freelist (or makes a fresh one).
  ExecFrame takeFrame();

  /// Returns a finished frame to the freelist, keeping its capacity.
  void recycleFrame(ExecFrame &&F);

  /// Records a finished run's trace length; the next run reserves step
  /// storage up front instead of growth-doubling through it.
  void noteTraceSize(size_t Steps);

  /// Reservation hint for ExecutionTrace::Steps (0 on a fresh context).
  size_t stepsHint() const { return StepsHint; }

  // Shadow state the engine works on directly.
  std::vector<int64_t> GlobalMem;
  std::vector<TraceIdx> GlobalLastDef;
  std::vector<uint32_t> InstCount;

private:
  std::vector<ExecFrame> FreeFrames;
  size_t StepsHint = 0;
};

/// Thread-safe arena of ExecContexts. Contexts are created on demand and
/// recycled on release, so steady-state parallel verification runs with
/// at most pool-width contexts and no per-run allocation of the shadow
/// state.
class ExecContextPool {
public:
  /// RAII lease; returns the context to the pool on destruction.
  class Lease {
  public:
    Lease(ExecContextPool &Pool, std::unique_ptr<ExecContext> Ctx)
        : Pool(&Pool), Ctx(std::move(Ctx)) {}
    Lease(Lease &&) = default;
    Lease &operator=(Lease &&) = default;
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    ~Lease() {
      if (Ctx)
        Pool->release(std::move(Ctx));
    }

    ExecContext &operator*() { return *Ctx; }
    ExecContext *operator->() { return Ctx.get(); }

  private:
    ExecContextPool *Pool;
    std::unique_ptr<ExecContext> Ctx;
  };

  Lease acquire();

  /// Number of idle contexts currently pooled (for tests).
  size_t idleCount() const;

  /// Starts recording acquisitions and freelist reuses into \p Reg
  /// (interp.ctx_acquires / interp.ctx_reuses). Call before handing the
  /// pool to concurrent users.
  void bindStats(support::StatsRegistry *Reg);

private:
  void release(std::unique_ptr<ExecContext> Ctx);

  mutable std::mutex M;
  std::vector<std::unique_ptr<ExecContext>> Free;
  support::StatCounter *CAcquires = nullptr;
  support::StatCounter *CReuses = nullptr;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_EXECCONTEXT_H
