//===-- interp/ExecContext.cpp - Reusable execution state ---------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/ExecContext.h"

#include "support/Stats.h"

using namespace eoe;
using namespace eoe::interp;

void ExecContext::beginRun(size_t StmtCount, size_t GlobalSlots) {
  GlobalMem.assign(GlobalSlots, 0);
  GlobalLastDef.assign(GlobalSlots, InvalidId);
  InstCount.assign(StmtCount, 0);
}

ExecFrame ExecContext::takeFrame() {
  if (FreeFrames.empty())
    return ExecFrame();
  ExecFrame F = std::move(FreeFrames.back());
  FreeFrames.pop_back();
  return F;
}

void ExecContext::recycleFrame(ExecFrame &&F) {
  F.Func = nullptr;
  F.Mem.clear();
  F.LastDef.clear();
  F.LastPredInstance.clear();
  F.RetVal = 0;
  F.RetValDef = InvalidId;
  F.CallSite = InvalidId;
  F.Serial = 0;
  FreeFrames.push_back(std::move(F));
}

void ExecContext::noteTraceSize(size_t Steps) {
  if (Steps > StepsHint)
    StepsHint = Steps;
}

ExecContextPool::Lease ExecContextPool::acquire() {
  if (CAcquires)
    CAcquires->add();
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Free.empty()) {
      std::unique_ptr<ExecContext> Ctx = std::move(Free.back());
      Free.pop_back();
      if (CReuses)
        CReuses->add();
      return Lease(*this, std::move(Ctx));
    }
  }
  return Lease(*this, std::make_unique<ExecContext>());
}

void ExecContextPool::bindStats(support::StatsRegistry *Reg) {
  if (!Reg) {
    CAcquires = CReuses = nullptr;
    return;
  }
  CAcquires = &Reg->counter("interp.ctx_acquires");
  CReuses = &Reg->counter("interp.ctx_reuses");
}

size_t ExecContextPool::idleCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Free.size();
}

void ExecContextPool::release(std::unique_ptr<ExecContext> Ctx) {
  std::lock_guard<std::mutex> Lock(M);
  Free.push_back(std::move(Ctx));
}
