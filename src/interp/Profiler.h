//===-- interp/Profiler.h - Test-suite profiling -----------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiling over a suite of passing inputs, reproducing the paper's
/// offline preparation: "the prototype first executes the binary with a
/// large set of test cases to construct the static [union] dependence
/// graph and collect value profile for the confidence analysis".
///
/// The union dependence graph records every (defining statement ->
/// loading expression) data dependence exercised by any profiled run; the
/// value profile records the distinct values each statement defined.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_PROFILER_H
#define EOE_INTERP_PROFILER_H

#include "interp/Checkpoint.h"
#include "interp/Interpreter.h"
#include "interp/Trace.h"

#include <cstdint>
#include <set>
#include <vector>

namespace eoe {
namespace interp {

/// The union of dynamic data dependences over all profiled runs.
class UnionDependenceGraph {
public:
  /// Records that some run carried a value from \p Def to load \p Use.
  void addDataDep(StmtId Def, ExprId Use) { Deps.insert({Def, Use}); }

  /// True if any profiled run exercised the dependence.
  bool contains(StmtId Def, ExprId Use) const {
    return Deps.count({Def, Use}) != 0;
  }

  /// True if any profiled run carried a value from \p Def to any load.
  bool definesSomething(StmtId Def) const;

  size_t size() const { return Deps.size(); }

private:
  std::set<std::pair<StmtId, ExprId>> Deps;
};

/// Distinct values defined per statement, with a cap so profiles stay
/// small. Feeds the confidence analysis' range estimates (PLDI'06).
class ValueProfile {
public:
  explicit ValueProfile(size_t StmtCount, size_t Cap = 4096)
      : Values(StmtCount), Cap(Cap) {}

  void addValue(StmtId Stmt, int64_t Value) {
    auto &Set = Values[Stmt];
    if (Set.size() < Cap)
      Set.insert(Value);
  }

  /// Number of distinct values \p Stmt was observed to define; at least 1
  /// so logarithmic confidence formulas stay defined.
  size_t rangeSize(StmtId Stmt) const {
    return Values[Stmt].empty() ? 1 : Values[Stmt].size();
  }

  const std::set<int64_t> &values(StmtId Stmt) const { return Values[Stmt]; }

private:
  std::vector<std::set<int64_t>> Values;
  size_t Cap;
};

/// Combined profiling results.
struct Profile {
  UnionDependenceGraph UnionDeps;
  ValueProfile Values;
  /// Number of runs profiled.
  size_t Runs = 0;

  explicit Profile(size_t StmtCount) : Values(StmtCount) {}
};

/// Knobs for profileTestSuite beyond the per-run step budget.
struct ProfileOptions {
  uint64_t MaxStepsPerRun = 5'000'000;

  /// Checkpoint warming: when set (with ShareMaxSteps, the switched-run
  /// step budget forming the shared store's validity key), the profiling
  /// pass doubles as a snapshot collector. All runs of the same program
  /// execute an identical prefix up to the first input() read, so the
  /// predicate instances of the first run's pre-input prefix are valid
  /// capture sites on the second run; the second run is re-executed with
  /// collection instrumentation (no extra executions) and every capture
  /// -- input-independent by construction -- is promoted into Share.
  /// Suites with fewer than two inputs skip collection: there is no
  /// second run to instrument.
  SharedCheckpointStore *Share = nullptr;
  uint64_t ShareMaxSteps = 0;
  /// Autotuning budget for the collection stride (the same 2x-
  /// oversubscription rule the verifier's collection pass uses).
  size_t ShareBudgetBytes = DefaultCheckpointMemBytes / 4;
};

/// Runs \p Interp over every input vector in \p Suite and accumulates the
/// union dependence graph and value profile; optionally warms a shared
/// checkpoint store on the way (ProfileOptions::Share).
Profile profileTestSuite(const Interpreter &Interp,
                         const lang::Program &Prog,
                         const std::vector<std::vector<int64_t>> &Suite,
                         const ProfileOptions &PO);

/// Convenience overload: profile only, no checkpoint warming.
Profile profileTestSuite(const Interpreter &Interp,
                         const lang::Program &Prog,
                         const std::vector<std::vector<int64_t>> &Suite,
                         uint64_t MaxStepsPerRun = 5'000'000);

/// Accumulates one already-collected trace into \p P.
void accumulateTrace(Profile &P, const ExecutionTrace &Trace);

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_PROFILER_H
