//===-- interp/Trace.h - Execution traces ------------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution trace produced by the tracing interpreter: one StepRecord
/// per executed statement instance, carrying the instance's dynamic
/// control-dependence parent, branch outcome, memory uses (each with the
/// defining instance -- the dynamic data dependences), and definitions.
/// The trace *is* the dynamic dependence graph; the ddg library only adds
/// closure algorithms and implicit edges on top.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_TRACE_H
#define EOE_INTERP_TRACE_H

#include "support/Ids.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace eoe {
namespace interp {

/// An abstract memory location.
///
/// Encoding: the upper 40 bits hold the frame serial (0 for global memory),
/// the lower 24 bits the slot within that frame or the global area. Slot
/// 0xffffff of a frame is its return-value cell.
struct MemLoc {
  uint64_t Raw = 0;

  static constexpr uint64_t SlotBits = 24;
  static constexpr uint64_t SlotMask = (1ull << SlotBits) - 1;
  static constexpr uint64_t RetValSlot = SlotMask;

  static MemLoc global(uint32_t Slot) { return {Slot}; }
  static MemLoc frame(uint64_t Serial, uint32_t Slot) {
    return {(Serial << SlotBits) | Slot};
  }
  static MemLoc retVal(uint64_t Serial) {
    return {(Serial << SlotBits) | RetValSlot};
  }

  uint64_t frameSerial() const { return Raw >> SlotBits; }
  uint32_t slot() const { return static_cast<uint32_t>(Raw & SlotMask); }
  bool isGlobal() const { return frameSerial() == 0; }
  bool isRetVal() const { return slot() == RetValSlot; }

  bool operator==(const MemLoc &O) const = default;
};

/// One memory read performed while executing a statement instance.
struct UseRecord {
  /// The concrete location read.
  MemLoc Loc;
  /// The instance that wrote the value (dynamic data dependence source);
  /// InvalidId when the location was never written (reads as 0).
  TraceIdx Def = InvalidId;
  /// The AST expression that performed the load (VarRef / ArrayRef node,
  /// or the CallExpr for a return-value read). Uses are matched across
  /// executions by this id, so "the same use" is stable even when array
  /// indices differ (the paper's outbuf[i+1] discussion).
  ExprId LoadExpr = InvalidId;
  /// Location class for potential-dependence queries: the variable
  /// (whole array) read, or InvalidId for return-value reads.
  VarId Var = InvalidId;
  /// The value observed by the read.
  int64_t Value = 0;

  bool operator==(const UseRecord &O) const = default;
};

/// One memory write performed by a statement instance.
struct DefRecord {
  MemLoc Loc;
  /// Location class written (InvalidId for return-value cells).
  VarId Var = InvalidId;
  int64_t Value = 0;

  bool operator==(const DefRecord &O) const = default;
};

/// One executed statement instance.
struct StepRecord {
  StmtId Stmt = InvalidId;
  /// The instance this one is dynamically control dependent on: the most
  /// recent instance of one of the statement's static control-dependence
  /// parents in the same invocation, or the calling statement's instance
  /// for a function's top-level statements; InvalidId at main's top level.
  /// The CdParent relation is the paper's region tree (Definition 3).
  TraceIdx CdParent = InvalidId;
  /// 1-based occurrence number of this statement in the execution.
  uint32_t InstanceNo = 0;
  /// Predicate outcome: -1 for non-predicates, else 0/1.
  int8_t BranchTaken = -1;
  /// Value summary: the defined value, branch condition value, or first
  /// printed value, depending on the statement kind.
  int64_t Value = 0;
  std::vector<UseRecord> Uses;
  std::vector<DefRecord> Defs;

  bool isPredicateInstance() const { return BranchTaken >= 0; }
  bool branch() const { return BranchTaken == 1; }

  /// Byte-for-byte equality, used by the checkpoint-equivalence property
  /// tests (a resumed trace must equal a full replay).
  bool operator==(const StepRecord &O) const = default;
};

/// One value printed by a print statement.
struct OutputEvent {
  /// The print instance that emitted the value.
  TraceIdx Step = InvalidId;
  /// Zero-based argument position within the print statement.
  uint32_t ArgNo = 0;
  /// The argument expression (used to find the matching output in a
  /// switched execution).
  ExprId ArgExpr = InvalidId;
  int64_t Value = 0;

  bool operator==(const OutputEvent &O) const = default;
};

/// How an execution ended.
enum class ExitReason {
  /// main returned normally.
  Finished,
  /// The step budget ran out -- the paper's verification timeout.
  StepLimit,
  /// Out-of-bounds array access or division by zero.
  RuntimeError
};

/// A complete traced execution.
struct ExecutionTrace {
  std::vector<StepRecord> Steps;
  std::vector<OutputEvent> Outputs;
  ExitReason Exit = ExitReason::Finished;
  /// main's return value when Exit == Finished.
  int64_t ExitValue = 0;
  /// The instance where the execution was forcibly altered, if any: the
  /// switched predicate instance, or the value-perturbed definition
  /// instance. Everything before this index is byte-identical to the
  /// unaltered run on the same input -- the invariant the aligner uses.
  TraceIdx SwitchedStep = InvalidId;
  /// The first step during which an input() expression was evaluated, or
  /// InvalidId if the run never read input. Every step before this index
  /// -- and any checkpoint captured there -- is a function of the program
  /// alone, valid for any input (the cross-input sharing watermark; see
  /// interp/Checkpoint.h).
  TraceIdx FirstInputStep = InvalidId;
  /// Bookkeeping for switched-run suffix splicing (transient -- not
  /// serialized by TraceIO; see interp/SwitchedRunStore.h). Number of
  /// steps appended from the original trace after a successful
  /// reconvergence probe instead of being interpreted, and the number of
  /// probe attempts this run made.
  TraceIdx SplicedSuffix = 0;
  uint32_t ReconvergeProbes = 0;

  size_t size() const { return Steps.size(); }
  const StepRecord &step(TraceIdx I) const { return Steps.at(I); }

  /// Output values in emission order (the observable behaviour).
  std::vector<int64_t> outputValues() const {
    std::vector<int64_t> V;
    V.reserve(Outputs.size());
    for (const OutputEvent &E : Outputs)
      V.push_back(E.Value);
    return V;
  }
};

/// Identifies the predicate instance to switch in a re-execution: the
/// InstanceNo-th evaluation of statement Pred has its outcome negated.
struct SwitchSpec {
  StmtId Pred = InvalidId;
  uint32_t InstanceNo = 0;
};

/// Identifies a definition instance whose produced value is replaced in
/// a re-execution: the InstanceNo-th execution of statement Stmt defines
/// Value instead of what it computed. This realizes the paper's section
/// 5 proposal of perturbing a value rather than a branch outcome -- the
/// sound-but-expensive way around the nested-predicate unsoundness.
struct PerturbSpec {
  StmtId Stmt = InvalidId;
  uint32_t InstanceNo = 0;
  int64_t Value = 0;
};

/// One forced control- or value-alteration the interpreter has applied
/// to a run so far. The ordered sequence of decisions applied by a
/// switched/perturbed run is its *divergence key*: two runs of the same
/// program on the same input with the same applied-decision sequence are
/// in identical states from the last application onward, so snapshots
/// captured past that point are interchangeable between them (see
/// interp/SwitchedRunStore.h).
struct SwitchDecision {
  /// The altered statement (the switched predicate, or the perturbed
  /// definition).
  StmtId Stmt = InvalidId;
  /// Its instance number at application time.
  uint32_t InstanceNo = 0;
  /// False = branch switch (SwitchSpec), true = value perturbation.
  bool Perturb = false;
  /// The forced value for perturbations; 0 for switches.
  int64_t Value = 0;

  bool operator==(const SwitchDecision &D) const = default;
  auto operator<=>(const SwitchDecision &D) const = default;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_TRACE_H
