//===-- interp/Checkpoint.cpp - Interpreter snapshots -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Checkpoint.h"

#include "lang/PrettyPrinter.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::interp;

static size_t stepRecordBytes(const StepRecord &R) {
  return sizeof(StepRecord) + R.Uses.capacity() * sizeof(UseRecord) +
         R.Defs.capacity() * sizeof(DefRecord);
}

size_t Checkpoint::bytes() const {
  size_t N = sizeof(Checkpoint);
  N += GlobalMem.capacity() * sizeof(int64_t);
  N += GlobalLastDef.capacity() * sizeof(TraceIdx);
  N += InstCount.capacity() * sizeof(uint32_t);
  for (const CheckpointFrame &CF : Frames) {
    N += sizeof(CheckpointFrame);
    N += CF.State.Mem.capacity() * sizeof(int64_t);
    N += CF.State.LastDef.capacity() * sizeof(TraceIdx);
    // unordered_map node: key+value plus bucket/node overhead estimate.
    N += CF.State.LastPredInstance.size() *
         (sizeof(StmtId) + sizeof(TraceIdx) + 4 * sizeof(void *));
    N += CF.Path.capacity() * sizeof(ResumeEntry);
    N += stepRecordBytes(CF.PendingSnapshot);
  }
  N += Divergence.capacity() * sizeof(SwitchDecision);
  return N;
}

//===----------------------------------------------------------------------===//
// Delta encoding
//===----------------------------------------------------------------------===//

static size_t frameRawBytes(const CheckpointFrame &CF) {
  return sizeof(CheckpointFrame) + CF.State.Mem.capacity() * sizeof(int64_t) +
         CF.State.LastDef.capacity() * sizeof(TraceIdx) +
         CF.State.LastPredInstance.size() *
             (sizeof(StmtId) + sizeof(TraceIdx) + 4 * sizeof(void *)) +
         CF.Path.capacity() * sizeof(ResumeEntry) +
         stepRecordBytes(CF.PendingSnapshot);
}

size_t CheckpointFrameDelta::bytes() const {
  size_t N = sizeof(CheckpointFrameDelta);
  if (Full)
    return N + frameRawBytes(Whole);
  N += Mem.bytes() + LastDef.bytes() + Preds.bytes();
  N += Path.capacity() * sizeof(ResumeEntry);
  N += stepRecordBytes(PendingSnapshot);
  return N;
}

size_t CheckpointDelta::bytes() const {
  size_t N = sizeof(CheckpointDelta);
  N += GlobalMem.bytes() + GlobalLastDef.bytes() + InstCount.bytes();
  for (const CheckpointFrameDelta &FD : Frames)
    N += FD.bytes();
  N += Divergence.capacity() * sizeof(SwitchDecision);
  return N;
}

static PredMapDelta
diffPredMap(const std::unordered_map<StmtId, TraceIdx> &Base,
            const std::unordered_map<StmtId, TraceIdx> &Cur) {
  PredMapDelta D;
  for (const auto &[Stmt, Inst] : Cur) {
    auto It = Base.find(Stmt);
    if (It == Base.end() || It->second != Inst)
      D.Upserts.push_back({Stmt, Inst});
  }
  for (const auto &[Stmt, Inst] : Base)
    if (!Cur.count(Stmt))
      D.Erased.push_back(Stmt);
  // Deterministic encoding regardless of hash-table iteration order (the
  // delta feeds byte accounting and tests compare decoded state, but a
  // canonical form keeps encoded sizes run-to-run stable too).
  std::sort(D.Upserts.begin(), D.Upserts.end());
  std::sort(D.Erased.begin(), D.Erased.end());
  return D;
}

CheckpointDelta eoe::interp::encodeCheckpointDelta(const Checkpoint &Base,
                                                   const Checkpoint &Cur) {
  CheckpointDelta D;
  D.Index = Cur.Index;
  D.InputCursor = Cur.InputCursor;
  D.StepCount = Cur.StepCount;
  D.FrameCounter = Cur.FrameCounter;
  D.OutputCount = Cur.OutputCount;
  D.InputIndependent = Cur.InputIndependent;
  D.GlobalMem = ArrayDelta<int64_t>::diff(Base.GlobalMem, Cur.GlobalMem);
  D.GlobalLastDef =
      ArrayDelta<TraceIdx>::diff(Base.GlobalLastDef, Cur.GlobalLastDef);
  D.InstCount = ArrayDelta<uint32_t>::diff(Base.InstCount, Cur.InstCount);
  D.Divergence = Cur.Divergence;
  D.Frames.reserve(Cur.Frames.size());
  for (size_t I = 0; I < Cur.Frames.size(); ++I) {
    const CheckpointFrame &CF = Cur.Frames[I];
    CheckpointFrameDelta FD;
    // A frame can only be diffed against the base frame at the same depth
    // when it is the same activation (same Serial): only then do the two
    // share a function, argument layout, and memory shape.
    if (I < Base.Frames.size() &&
        Base.Frames[I].State.Serial == CF.State.Serial) {
      const ExecFrame &BF = Base.Frames[I].State;
      FD.Serial = CF.State.Serial;
      FD.RetVal = CF.State.RetVal;
      FD.RetValDef = CF.State.RetValDef;
      FD.CallSite = CF.State.CallSite;
      FD.Mem = ArrayDelta<int64_t>::diff(BF.Mem, CF.State.Mem);
      FD.LastDef = ArrayDelta<TraceIdx>::diff(BF.LastDef, CF.State.LastDef);
      FD.Preds = diffPredMap(BF.LastPredInstance, CF.State.LastPredInstance);
      FD.Path = CF.Path;
      FD.PendingRec = CF.PendingRec;
      FD.PendingSnapshot = CF.PendingSnapshot;
    } else {
      FD.Full = true;
      FD.Whole = CF;
    }
    D.Frames.push_back(std::move(FD));
  }
  return D;
}

std::shared_ptr<Checkpoint>
eoe::interp::applyCheckpointDelta(const Checkpoint &Base,
                                  const CheckpointDelta &D) {
  auto CP = std::make_shared<Checkpoint>();
  CP->Index = D.Index;
  CP->InputCursor = D.InputCursor;
  CP->StepCount = D.StepCount;
  CP->FrameCounter = D.FrameCounter;
  CP->OutputCount = D.OutputCount;
  CP->InputIndependent = D.InputIndependent;
  D.GlobalMem.apply(Base.GlobalMem, CP->GlobalMem);
  D.GlobalLastDef.apply(Base.GlobalLastDef, CP->GlobalLastDef);
  D.InstCount.apply(Base.InstCount, CP->InstCount);
  CP->Divergence = D.Divergence;
  CP->Frames.reserve(D.Frames.size());
  for (size_t I = 0; I < D.Frames.size(); ++I) {
    const CheckpointFrameDelta &FD = D.Frames[I];
    if (FD.Full) {
      CP->Frames.push_back(FD.Whole);
      continue;
    }
    const CheckpointFrame &BF = Base.Frames[I];
    CheckpointFrame CF;
    CF.State.Serial = FD.Serial;
    CF.State.Func = BF.State.Func; // Same activation => same function.
    CF.State.RetVal = FD.RetVal;
    CF.State.RetValDef = FD.RetValDef;
    CF.State.CallSite = FD.CallSite;
    FD.Mem.apply(BF.State.Mem, CF.State.Mem);
    FD.LastDef.apply(BF.State.LastDef, CF.State.LastDef);
    CF.State.LastPredInstance = BF.State.LastPredInstance;
    for (StmtId S : FD.Preds.Erased)
      CF.State.LastPredInstance.erase(S);
    for (const auto &[Stmt, Inst] : FD.Preds.Upserts)
      CF.State.LastPredInstance[Stmt] = Inst;
    CF.Path = FD.Path;
    CF.PendingRec = FD.PendingRec;
    CF.PendingSnapshot = FD.PendingSnapshot;
    CP->Frames.push_back(std::move(CF));
  }
  return CP;
}

//===----------------------------------------------------------------------===//
// CheckpointStore
//===----------------------------------------------------------------------===//

CheckpointStore::CheckpointStore(const Options &O)
    : Budget(O.BudgetBytes), DeltaEncode(O.DeltaEncode),
      KeyframeInterval(O.KeyframeInterval < 1 ? 1 : O.KeyframeInterval) {}

void CheckpointStore::dropSegmentLocked(uint64_t SegId) {
  auto It = Segments.find(SegId);
  if (It == Segments.end())
    return;
  for (const Entry &E : It->second.Chain) {
    TraceIdx Idx = E.IsDelta ? E.Delta.Index : E.Full->Index;
    ByIndex.erase(Idx);
  }
  Bytes -= It->second.Encoded;
  RawTotal -= It->second.Raw;
  Evicted += It->second.Chain.size();
  Segments.erase(It);
}

void CheckpointStore::evictLocked(uint64_t KeepSeg) {
  while (Bytes > Budget && Segments.size() > 1) {
    auto Victim = Segments.end();
    for (auto I = Segments.begin(); I != Segments.end(); ++I) {
      if (I->first == KeepSeg)
        continue; // Never evict the segment just inserted into.
      if (Victim == Segments.end() ||
          I->second.LastUse < Victim->second.LastUse)
        Victim = I;
    }
    if (Victim == Segments.end())
      break;
    dropSegmentLocked(Victim->first);
  }
}

void CheckpointStore::insert(std::shared_ptr<const Checkpoint> CP) {
  std::lock_guard<std::mutex> Lock(M);
  TraceIdx Key = CP->Index;
  if (ByIndex.count(Key))
    return; // Duplicate site; the delta chain base is left untouched.
  size_t Raw = CP->bytes();

  bool AsDelta = false;
  CheckpointDelta Delta;
  size_t Encoded = Raw;
  if (DeltaEncode && LastInserted && CurSeg != 0) {
    auto SegIt = Segments.find(CurSeg);
    if (SegIt != Segments.end() &&
        SegIt->second.Chain.size() < KeyframeInterval) {
      Delta = encodeCheckpointDelta(*LastInserted, *CP);
      size_t DeltaSz = Delta.bytes();
      // A diff that does not actually shrink the snapshot (e.g. the whole
      // frame stack was replaced) starts a fresh keyframe instead.
      if (DeltaSz < Raw) {
        AsDelta = true;
        Encoded = DeltaSz;
      }
    }
  }

  if (!AsDelta && Raw > Budget) {
    // Too large to ever retain: drop, count as evicted. The delta chain
    // must restart -- the dropped snapshot can't serve as anyone's base.
    ++Evicted;
    LastInserted = nullptr;
    CurSeg = 0;
    return;
  }

  uint64_t SegId;
  if (AsDelta) {
    SegId = CurSeg;
    Segment &S = Segments[SegId];
    ByIndex[Key] = {SegId, static_cast<uint32_t>(S.Chain.size())};
    Entry E;
    E.Delta = std::move(Delta);
    E.IsDelta = true;
    E.Encoded = Encoded;
    E.Raw = Raw;
    S.Chain.push_back(std::move(E));
    S.LastUse = ++Tick;
    S.Encoded += Encoded;
    S.Raw += Raw;
    ++DeltaEncoded;
  } else {
    SegId = NextSegId++;
    Segment &S = Segments[SegId];
    ByIndex[Key] = {SegId, 0};
    Entry E;
    E.Full = CP;
    E.Encoded = Encoded;
    E.Raw = Raw;
    S.Chain.push_back(std::move(E));
    S.LastUse = ++Tick;
    S.Encoded = Encoded;
    S.Raw = Raw;
    CurSeg = SegId;
    ++KeyframeCount;
  }
  Bytes += Encoded;
  RawTotal += Raw;
  LastInserted = std::move(CP);
  evictLocked(SegId);
}

std::shared_ptr<const Checkpoint> CheckpointStore::nearest(TraceIdx At) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = ByIndex.upper_bound(At);
  if (It == ByIndex.begin())
    return nullptr;
  --It;
  auto [SegId, Pos] = It->second;
  Segment &S = Segments.at(SegId);
  S.LastUse = ++Tick;
  if (!S.Chain[Pos].IsDelta)
    return S.Chain[Pos].Full;
  // Replay the chain from the keyframe (always position 0). Bounded by
  // KeyframeInterval - 1 sparse applications; done under the lock so a
  // concurrent insert can't evict the segment out from under the decode.
  std::shared_ptr<const Checkpoint> Cur = S.Chain[0].Full;
  for (uint32_t I = 1; I <= Pos; ++I)
    Cur = applyCheckpointDelta(*Cur, S.Chain[I].Delta);
  return Cur;
}

std::vector<std::shared_ptr<const Checkpoint>>
CheckpointStore::sample(size_t MaxCount) {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::shared_ptr<const Checkpoint>> Out;
  if (MaxCount == 0 || ByIndex.empty())
    return Out;
  // Pick <= MaxCount indices evenly by rank, then decode each the way
  // nearest() does. ByIndex iterates ascending, so the result is too.
  size_t N = ByIndex.size();
  size_t Stride = (N + MaxCount - 1) / MaxCount;
  size_t Rank = 0;
  Out.reserve(N < MaxCount ? N : MaxCount);
  for (const auto &[Idx, Where] : ByIndex) {
    if (Rank++ % Stride != 0)
      continue;
    auto [SegId, Pos] = Where;
    Segment &S = Segments.at(SegId);
    S.LastUse = ++Tick;
    if (!S.Chain[Pos].IsDelta) {
      Out.push_back(S.Chain[Pos].Full);
      continue;
    }
    std::shared_ptr<const Checkpoint> Cur = S.Chain[0].Full;
    for (uint32_t I = 1; I <= Pos; ++I)
      Cur = applyCheckpointDelta(*Cur, S.Chain[I].Delta);
    Out.push_back(std::move(Cur));
  }
  return Out;
}

size_t CheckpointStore::count() const {
  std::lock_guard<std::mutex> Lock(M);
  return ByIndex.size();
}

size_t CheckpointStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

size_t CheckpointStore::rawBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return RawTotal;
}

size_t CheckpointStore::keyframes() const {
  std::lock_guard<std::mutex> Lock(M);
  return KeyframeCount;
}

size_t CheckpointStore::deltaCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return DeltaEncoded;
}

size_t CheckpointStore::evictions() const {
  std::lock_guard<std::mutex> Lock(M);
  return Evicted;
}

//===----------------------------------------------------------------------===//
// SharedCheckpointStore
//===----------------------------------------------------------------------===//

bool SharedCheckpointStore::promote(const std::shared_ptr<const Checkpoint> &CP,
                                    uint64_t ProgramHash, const void *Program,
                                    uint64_t MaxSteps, bool FromDisk) {
  // Divergence-keyed snapshots (captured on switched runs) are only valid
  // for runs repeating the same forced decisions -- never for the shared
  // cross-input store, whose consumers run unswitched prefixes.
  if (!CP || !CP->InputIndependent || !CP->Divergence.empty())
    return false;
  std::lock_guard<std::mutex> Lock(M);
  Key K{ProgramHash, Program, MaxSteps};
  auto &ForKey = Entries[K];
  if (ForKey.count(CP->Index))
    return false;
  size_t Sz = CP->bytes();
  if (Bytes + Sz > Budget) {
    ++Rejected;
    return false;
  }
  ForKey.emplace(CP->Index, CP);
  if (FromDisk) {
    auto &Idx = DiskOrigin[K];
    Idx.insert(std::lower_bound(Idx.begin(), Idx.end(), CP->Index),
               CP->Index);
  }
  Bytes += Sz;
  return true;
}

std::vector<TraceIdx>
SharedCheckpointStore::diskIndicesFor(uint64_t ProgramHash,
                                      const void *Program,
                                      uint64_t MaxSteps) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = DiskOrigin.find(Key{ProgramHash, Program, MaxSteps});
  return It == DiskOrigin.end() ? std::vector<TraceIdx>{} : It->second;
}

std::vector<std::shared_ptr<const Checkpoint>>
SharedCheckpointStore::snapshotsFor(uint64_t ProgramHash, const void *Program,
                                    uint64_t MaxSteps) const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::shared_ptr<const Checkpoint>> Out;
  auto It = Entries.find(Key{ProgramHash, Program, MaxSteps});
  if (It == Entries.end())
    return Out;
  Out.reserve(It->second.size());
  for (const auto &[Idx, CP] : It->second)
    Out.push_back(CP);
  return Out;
}

size_t SharedCheckpointStore::count() const {
  std::lock_guard<std::mutex> Lock(M);
  size_t N = 0;
  for (const auto &[K, ForKey] : Entries)
    N += ForKey.size();
  return N;
}

size_t SharedCheckpointStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

size_t SharedCheckpointStore::rejected() const {
  std::lock_guard<std::mutex> Lock(M);
  return Rejected;
}

uint64_t SharedCheckpointStore::hashProgram(const lang::Program &Prog) {
  std::string Text = lang::programToString(Prog);
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull; // FNV-1a prime.
  }
  return H;
}
