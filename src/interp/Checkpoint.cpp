//===-- interp/Checkpoint.cpp - Interpreter snapshots -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Checkpoint.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::interp;

static size_t stepRecordBytes(const StepRecord &R) {
  return sizeof(StepRecord) + R.Uses.capacity() * sizeof(UseRecord) +
         R.Defs.capacity() * sizeof(DefRecord);
}

size_t Checkpoint::bytes() const {
  size_t N = sizeof(Checkpoint);
  N += GlobalMem.capacity() * sizeof(int64_t);
  N += GlobalLastDef.capacity() * sizeof(TraceIdx);
  N += InstCount.capacity() * sizeof(uint32_t);
  for (const CheckpointFrame &CF : Frames) {
    N += sizeof(CheckpointFrame);
    N += CF.State.Mem.capacity() * sizeof(int64_t);
    N += CF.State.LastDef.capacity() * sizeof(TraceIdx);
    // unordered_map node: key+value plus bucket/node overhead estimate.
    N += CF.State.LastPredInstance.size() *
         (sizeof(StmtId) + sizeof(TraceIdx) + 4 * sizeof(void *));
    N += CF.Path.capacity() * sizeof(ResumeEntry);
    N += stepRecordBytes(CF.PendingSnapshot);
  }
  return N;
}

void CheckpointStore::insert(std::shared_ptr<const Checkpoint> CP) {
  std::lock_guard<std::mutex> Lock(M);
  size_t Sz = CP->bytes();
  if (Sz > Budget) {
    ++Evicted; // Too large to ever retain: drop, count as evicted.
    return;
  }
  TraceIdx Key = CP->Index;
  auto [It, Inserted] = ByIndex.try_emplace(Key);
  if (!Inserted)
    return;
  It->second.CP = std::move(CP);
  It->second.LastUse = ++Tick;
  Bytes += Sz;
  while (Bytes > Budget && ByIndex.size() > 1) {
    auto Victim = ByIndex.end();
    for (auto I = ByIndex.begin(); I != ByIndex.end(); ++I) {
      if (I->first == Key)
        continue; // Never evict the snapshot just inserted.
      if (Victim == ByIndex.end() || I->second.LastUse < Victim->second.LastUse)
        Victim = I;
    }
    if (Victim == ByIndex.end())
      break;
    Bytes -= Victim->second.CP->bytes();
    ByIndex.erase(Victim);
    ++Evicted;
  }
}

std::shared_ptr<const Checkpoint> CheckpointStore::nearest(TraceIdx At) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = ByIndex.upper_bound(At);
  if (It == ByIndex.begin())
    return nullptr;
  --It;
  It->second.LastUse = ++Tick;
  return It->second.CP;
}

size_t CheckpointStore::count() const {
  std::lock_guard<std::mutex> Lock(M);
  return ByIndex.size();
}

size_t CheckpointStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Bytes;
}

size_t CheckpointStore::evictions() const {
  std::lock_guard<std::mutex> Lock(M);
  return Evicted;
}
