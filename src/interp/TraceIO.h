//===-- interp/TraceIO.h - Trace serialization -------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of execution traces, so traces can be collected
/// once (tracing is the expensive phase, Table 4) and analyzed offline:
/// sliced, aligned, or diffed without re-running the program. The format
/// is line-oriented and versioned.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_TRACEIO_H
#define EOE_INTERP_TRACEIO_H

#include "interp/Trace.h"

#include <optional>
#include <string>

namespace eoe {
namespace interp {

/// Serializes \p Trace into the versioned text format.
std::string serializeTrace(const ExecutionTrace &Trace);

/// Parses a trace produced by serializeTrace. Returns nullopt on any
/// syntax or consistency error (bad header, dangling indices, truncated
/// records); \p Error receives a description when non-null.
std::optional<ExecutionTrace> deserializeTrace(const std::string &Text,
                                               std::string *Error = nullptr);

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_TRACEIO_H
