//===-- interp/Interpreter.h - Tracing interpreter ---------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing interpreter: Siml's execution substrate, standing in for
/// the paper's valgrind-based online component. One run yields an
/// ExecutionTrace carrying the full dynamic dependence information, and
/// optionally applies a predicate switch (the paper section 3's forced
/// branch outcome) at a chosen predicate instance.
///
/// Executions are deterministic functions of (program, input, switch
/// spec), which is what makes instance numbers stable between an original
/// and a switched run up to the switch point.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_INTERPRETER_H
#define EOE_INTERP_INTERPRETER_H

#include "analysis/StaticAnalysis.h"
#include "interp/Checkpoint.h"
#include "interp/ExecContext.h"
#include "interp/SwitchedRunStore.h"
#include "interp/Trace.h"
#include "lang/AST.h"
#include "support/Stats.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace eoe {
namespace interp {

/// Executes Siml programs with full dependence tracing.
class Interpreter {
public:
  struct Options {
    /// Statement-instance budget; hitting it ends the run with
    /// ExitReason::StepLimit. This implements the paper's verification
    /// timer ("we set a timer which if expires, we aggressively conclude
    /// the verification fails").
    uint64_t MaxSteps = 5'000'000;
    /// Optional predicate switch to apply.
    std::optional<SwitchSpec> Switch;
    /// Optional value perturbation to apply (mutually exclusive with
    /// Switch in practice; both honored if given).
    std::optional<PerturbSpec> Perturb;
    /// Multi-decision perturbation chain (paper section 5): every entry
    /// is applied at its (Stmt, InstanceNo) instance -- predicate
    /// switches for Perturb == false entries (Value must be 0), value
    /// perturbations otherwise. Decisions should be listed in execution
    /// order; an instance named by both Switch and a Decisions entry
    /// fires once. Trace.SwitchedStep records the *first* decision
    /// applied (the divergence point alignment starts from).
    std::vector<SwitchDecision> Decisions;
    /// When false, the program runs without recording steps, uses, or
    /// definitions (outputs are still collected). This is the "Plain"
    /// baseline of the paper's Table 4 -- execution without the
    /// dependence-graph instrumentation.
    bool Trace = true;
    /// When set, this (tracing) run snapshots interpreter state into
    /// Checkpoints->Store at each of Checkpoints->Sites (ascending trace
    /// indices of predicate instances), skipping sites reached through a
    /// non-statement-root call (see Checkpoint.h). The plan's Collected /
    /// SkippedDirty out-params are written back. Ignored by runFrom.
    CheckpointPlan *Checkpoints = nullptr;
    /// When set on a switched/perturbed tracing run, the engine captures
    /// divergence-keyed snapshots past the last applied decision (see
    /// SwitchedRunStore.h). Owned by the caller, one plan per run.
    SwitchedCapturePlan *SwitchedCapture = nullptr;
    /// When set on a switched/perturbed tracing run, the engine probes
    /// the plan's sites once all decisions are applied; on a match it
    /// stops interpreting and splices the rest of the plan's original
    /// trace (suffix splicing; byte-identical to interpreting on). The
    /// plan is read-only and may be shared by concurrent runs.
    const ReconvergePlan *Reconverge = nullptr;
  };

  /// \p Analysis must have been built for \p Prog. When \p Stats is
  /// given, every run records per-run cost into it (interp.runs,
  /// interp.steps, interp.run_time, ...); the instrumentation is per run,
  /// not per step, so the enabled overhead is a handful of atomic adds
  /// per execution and the disabled overhead is one branch.
  Interpreter(const lang::Program &Prog,
              const analysis::StaticAnalysis &Analysis,
              support::StatsRegistry *Stats = nullptr);

  /// Runs the program on \p Input and returns the trace.
  ExecutionTrace run(const std::vector<int64_t> &Input,
                     const Options &Opts) const;

  /// Same, executing on \p Ctx's recycled buffers. The interpreter itself
  /// is immutable, so concurrent runs are safe as long as each supplies
  /// its own context (the parallel verification engine leases one per
  /// task from an ExecContextPool).
  ExecutionTrace run(const std::vector<int64_t> &Input, const Options &Opts,
                     ExecContext &Ctx) const;

  /// Runs with default options (no switch, default step budget).
  ExecutionTrace run(const std::vector<int64_t> &Input) const {
    return run(Input, Options());
  }

  /// Convenience: runs with \p Spec switched. When \p Ctx is given the
  /// run executes on its recycled buffers (callers looping over switched
  /// runs should reuse one context instead of paying a fresh shadow-state
  /// allocation per call).
  ExecutionTrace runSwitched(const std::vector<int64_t> &Input,
                             SwitchSpec Spec, uint64_t MaxSteps,
                             ExecContext *Ctx = nullptr) const;

  /// Convenience: runs with the whole decision chain applied (see
  /// Options::Decisions). A one-element chain of a non-perturb decision
  /// is byte-identical to the SwitchSpec overload.
  ExecutionTrace runSwitched(const std::vector<int64_t> &Input,
                             const std::vector<SwitchDecision> &Decisions,
                             uint64_t MaxSteps,
                             ExecContext *Ctx = nullptr) const;

  /// Resumes execution from \p CP, splicing Steps[0, CP.Index) and the
  /// matching output prefix of \p SpliceFrom (the trace of the run that
  /// captured \p CP) instead of re-executing them. \p Input must be the
  /// input of the capturing run -- except when CP.InputIndependent, in
  /// which case the prefix read no input and \p Input may be *any* input
  /// vector, provided \p SpliceFrom is an unswitched trace of the same
  /// program (its prefix up to CP.Index is then input-invariant too);
  /// this is what makes cross-input checkpoint sharing sound (see
  /// SharedCheckpointStore). The result is byte-identical to
  /// run(Input, Opts) for any Opts whose switch/perturbation targets lie
  /// at or after CP.Index and whose MaxSteps is no lower than the
  /// capturing run's budget at capture time.
  ///
  /// Divergence-keyed resumes (SwitchedRunStore): when CP.Divergence is
  /// non-empty, \p SpliceFrom must be the capturing *switched* run's
  /// trace and Opts must request exactly the decisions CP.Divergence
  /// starts with -- decisions the snapshot already applied are marked
  /// applied and can never re-fire (their instance counters have passed);
  /// the result is byte-identical to the full switched run.
  ///
  /// Opts.Trace must be true; Opts.Checkpoints is ignored.
  ExecutionTrace runFrom(const Checkpoint &CP,
                         const ExecutionTrace &SpliceFrom,
                         const std::vector<int64_t> &Input,
                         const Options &Opts, ExecContext &Ctx) const;

  /// Same, on a private context.
  ExecutionTrace runFrom(const Checkpoint &CP,
                         const ExecutionTrace &SpliceFrom,
                         const std::vector<int64_t> &Input,
                         const Options &Opts) const;

private:
  const lang::Program &Prog;
  const analysis::StaticAnalysis &Analysis;

  /// Metric handles resolved once at construction; all null when the
  /// interpreter runs unobserved.
  support::StatCounter *CRuns = nullptr;
  support::StatCounter *CSwitchedRuns = nullptr;
  support::StatCounter *CResumedRuns = nullptr;
  support::StatCounter *CSplicedSteps = nullptr;
  support::StatCounter *CSplicedSuffixSteps = nullptr;
  support::StatCounter *CSteps = nullptr;
  support::StatCounter *COutputs = nullptr;
  support::StatCounter *CAborts = nullptr;
  support::StatTimer *TRunTime = nullptr;

  ExecutionTrace record(ExecutionTrace T, bool Switched, bool Resumed,
                        TraceIdx Spliced) const;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_INTERPRETER_H
