//===-- interp/Checkpoint.h - Interpreter snapshots --------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointed re-execution for switched runs. The paper's implicit-
/// dependence check re-executes the program with one predicate instance
/// switched; because executions are deterministic functions of (program,
/// input, switch), the switched run is bit-identical to the original up
/// to the switch point. A Checkpoint captures the full interpreter state
/// at a predicate instance of the *original* run, so a switched run whose
/// switch point lies at or after the snapshot can splice the recorded
/// prefix of the original trace and resume execution there -- turning
/// O(prefix) replay per candidate into an O(prefix) memcpy-splice plus
/// O(suffix) execution, with none of the prefix's interpretation cost.
///
/// The interpreter is a recursive tree walker, so "interpreter state" is
/// a continuation: per active frame, the path of statement indices from
/// the function body root down to the active statement (CheckpointFrame::
/// Path), plus the frame itself. Checkpoints are only taken at *clean*
/// instants -- the active statement in every non-innermost frame is a
/// statement-root call (`f(x);`, `v = f(x);`, `var v = f(x);`,
/// `return f(x);`) whose arguments are fully evaluated -- so the work
/// remaining in each suspended frame is describable without capturing
/// partially evaluated expressions. Candidate sites inside e.g.
/// `x = f(1) + f(2)` are skipped (CheckpointPlan::SkippedDirty) and fall
/// back to full replay.
///
/// Trace records of statements still on the host stack at capture time
/// mutate after the snapshot (a call-site record gains its return-value
/// use and Defs when the callee returns), so each CheckpointFrame stores
/// an as-of-capture copy of its pending call-site record; resume splices
/// the original trace's prefix and overwrites those few records, making
/// the resumed trace byte-identical to a full replay. See
/// docs/checkpointing.md for the full determinism argument.
///
/// Storage is adaptive along three axes (docs/checkpointing.md):
///  - snapshots are *delta-compressed* against their predecessor on the
///    same path (frame memory, last-def tables, and instance counters
///    change slowly between adjacent snapshots), with a full keyframe
///    every KeyframeInterval entries so restore cost stays bounded;
///  - snapshots taken before the first input() read are *input-
///    independent* and can be promoted into a SharedCheckpointStore that
///    seeds later sessions over the same program on different inputs;
///  - the collection stride can be *autotuned* from the first capture's
///    size, the candidate density, and the byte budget (CheckpointPlan).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_CHECKPOINT_H
#define EOE_INTERP_CHECKPOINT_H

#include "interp/ExecContext.h"
#include "interp/Trace.h"
#include "support/Ids.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace eoe {

namespace lang {
class Program;
}

namespace interp {

/// Single source of truth for the checkpoint LRU byte budget; every
/// layer's knob (verifier, locate, workloads, CLI) defaults to this.
inline constexpr size_t DefaultCheckpointMemBytes = 256ull << 20;

/// Stride sentinel: pick the stride automatically from trace length,
/// candidate density, and the byte budget (see CheckpointPlan).
inline constexpr unsigned CheckpointStrideAuto = 0;

/// Stride sentinel: checkpointing disabled entirely (the full-replay
/// reference behavior).
inline constexpr unsigned CheckpointsOff = ~0u;

/// Every KeyframeInterval-th snapshot retained on a path is stored whole;
/// the ones between are sparse diffs, so a restore decodes at most
/// KeyframeInterval - 1 deltas.
inline constexpr unsigned DefaultKeyframeInterval = 8;

/// One level of the captured continuation: which body of the enclosing
/// construct execution descended into, and the statement index within it.
struct ResumeEntry {
  enum class Body : uint8_t {
    Func, ///< \p Index into the frame function's body.
    Then, ///< ... into the then-body of the If at the previous level.
    Else, ///< ... into the else-body of the If at the previous level.
    Loop, ///< ... into the body of the While at the previous level.
  };
  Body In = Body::Func;
  /// Statement index within that body. The entry's statement is the one
  /// execution was inside at capture time: for non-terminal levels an
  /// If/While/call statement, for the terminal level of the innermost
  /// frame the statement whose beginStep took the snapshot.
  uint32_t Index = 0;

  bool operator==(const ResumeEntry &O) const = default;
};

/// One suspended activation record.
struct CheckpointFrame {
  /// Copy of the frame (locals, last-def table, serial, call site,
  /// last-predicate-instance map) as of the capture instant.
  ExecFrame State;
  /// Path from the function body root to the active statement.
  std::vector<ResumeEntry> Path;
  /// For non-innermost frames: the trace record of the call statement
  /// that created the next frame, and its as-of-capture contents (the
  /// record mutates when the callee returns). InvalidId for the
  /// innermost frame.
  TraceIdx PendingRec = InvalidId;
  StepRecord PendingSnapshot;

  bool operator==(const CheckpointFrame &O) const = default;
};

/// Full interpreter state at the top of beginStep for one statement
/// instance of the original (unswitched) run -- captured before the
/// instance counter bump, so resuming re-executes that statement and a
/// switch targeting it triggers naturally.
struct Checkpoint {
  /// Trace index the capture happened at: the resumed run's first
  /// executed statement produces record Index.
  TraceIdx Index = 0;
  size_t InputCursor = 0;
  uint64_t StepCount = 0;
  uint64_t FrameCounter = 0;
  /// Outputs emitted so far (prefix of the original trace's Outputs).
  size_t OutputCount = 0;
  /// True when no input() expression had been evaluated before capture:
  /// the snapshot -- and the trace prefix it splices -- is a function of
  /// the program alone, so it is valid for *any* input of the same
  /// program (the cross-input sharing precondition; see
  /// SharedCheckpointStore and ExecutionTrace::FirstInputStep).
  bool InputIndependent = false;
  std::vector<int64_t> GlobalMem;
  std::vector<TraceIdx> GlobalLastDef;
  std::vector<uint32_t> InstCount;
  /// Active frames, outermost (main) first.
  std::vector<CheckpointFrame> Frames;
  /// Divergence key: the ordered forced alterations (switches /
  /// perturbations) the capturing run had applied before this snapshot.
  /// Empty for original-run snapshots. A snapshot with a non-empty key
  /// only resumes runs whose requested decision sequence starts with it
  /// (see SwitchedRunStore); such snapshots are never promoted into the
  /// cross-input SharedCheckpointStore or the on-disk cache.
  std::vector<SwitchDecision> Divergence;

  /// Approximate resident size, used against the store's LRU budget.
  size_t bytes() const;

  /// Value equality over the full state (the delta round-trip property:
  /// decode(encode(base, cp)) == cp, byte for byte).
  bool operator==(const Checkpoint &O) const = default;
};

/// Sparse diff of an array against a base version: the new size plus the
/// (index, value) pairs that differ. Entries past the base's size are
/// always listed, so apply() can default-extend and then overwrite.
template <typename T> struct ArrayDelta {
  uint32_t Size = 0;
  std::vector<std::pair<uint32_t, T>> Changed;

  static ArrayDelta diff(const std::vector<T> &Base,
                         const std::vector<T> &Cur) {
    ArrayDelta D;
    D.Size = static_cast<uint32_t>(Cur.size());
    size_t Common = Base.size() < Cur.size() ? Base.size() : Cur.size();
    for (size_t I = 0; I < Common; ++I)
      if (!(Base[I] == Cur[I]))
        D.Changed.push_back({static_cast<uint32_t>(I), Cur[I]});
    for (size_t I = Common; I < Cur.size(); ++I)
      D.Changed.push_back({static_cast<uint32_t>(I), Cur[I]});
    return D;
  }

  void apply(const std::vector<T> &Base, std::vector<T> &Out) const {
    size_t Keep = Base.size() < Size ? Base.size() : Size;
    Out.assign(Base.begin(), Base.begin() + Keep);
    Out.resize(Size);
    for (const auto &Change : Changed)
      Out[Change.first] = Change.second;
  }

  size_t bytes() const {
    return sizeof(ArrayDelta) +
           Changed.capacity() * sizeof(std::pair<uint32_t, T>);
  }
};

/// Sparse diff of the per-frame last-predicate-instance map.
struct PredMapDelta {
  std::vector<std::pair<StmtId, TraceIdx>> Upserts;
  std::vector<StmtId> Erased;

  size_t bytes() const {
    return sizeof(PredMapDelta) +
           Upserts.capacity() * sizeof(std::pair<StmtId, TraceIdx>) +
           Erased.capacity() * sizeof(StmtId);
  }
};

/// One suspended frame, encoded against the frame at the same depth of
/// the base checkpoint. When the activation differs (another Serial),
/// the frame is stored whole instead.
struct CheckpointFrameDelta {
  bool Full = false;
  CheckpointFrame Whole; ///< Set when Full.

  // Delta form: scalars verbatim, arrays and the predicate map as diffs
  // against the base frame's State. Func is inherited from the base
  // (same Serial => same activation => same function).
  uint64_t Serial = 0;
  int64_t RetVal = 0;
  TraceIdx RetValDef = InvalidId;
  TraceIdx CallSite = InvalidId;
  ArrayDelta<int64_t> Mem;
  ArrayDelta<TraceIdx> LastDef;
  PredMapDelta Preds;
  std::vector<ResumeEntry> Path;
  TraceIdx PendingRec = InvalidId;
  StepRecord PendingSnapshot;

  size_t bytes() const;
};

/// A Checkpoint encoded against its predecessor on the same collection
/// path. The slowly-changing bulk (frame memory, last-def tables,
/// instance counters) becomes sparse diffs; everything else is verbatim.
struct CheckpointDelta {
  TraceIdx Index = 0;
  size_t InputCursor = 0;
  uint64_t StepCount = 0;
  uint64_t FrameCounter = 0;
  size_t OutputCount = 0;
  bool InputIndependent = false;
  ArrayDelta<int64_t> GlobalMem;
  ArrayDelta<TraceIdx> GlobalLastDef;
  ArrayDelta<uint32_t> InstCount;
  std::vector<CheckpointFrameDelta> Frames;
  /// Carried verbatim (short; switched-run chains share one key).
  std::vector<SwitchDecision> Divergence;

  size_t bytes() const;
};

/// Encodes \p Cur as a diff against \p Base (any two snapshots of the
/// same program run; adjacency just makes the diff small).
CheckpointDelta encodeCheckpointDelta(const Checkpoint &Base,
                                      const Checkpoint &Cur);

/// Reconstructs the checkpoint \p D was encoded from, given the same
/// \p Base. decode(encode(Base, Cur)) == Cur exactly.
std::shared_ptr<Checkpoint> applyCheckpointDelta(const Checkpoint &Base,
                                                 const CheckpointDelta &D);

/// Thread-safe LRU-bounded container of checkpoints keyed by trace
/// index. Inserts happen during the single-threaded collection pass;
/// lookups (nearest dominating snapshot) come from concurrent
/// verification tasks. Checkpoints are handed out as shared_ptr<const>:
/// resuming only reads, so concurrent restores from one snapshot are
/// race-free.
///
/// With delta encoding on, consecutive inserts form *segments*: a full
/// keyframe followed by up to KeyframeInterval - 1 sparse diffs, each
/// encoded against the previous insert. The LRU budget is charged with
/// *encoded* bytes, and eviction removes whole segments (a delta is
/// useless without its bases), so effective snapshot capacity grows by
/// roughly the compression ratio. nearest() reconstructs delta entries
/// by replaying the segment's chain from its keyframe.
class CheckpointStore {
public:
  struct Options {
    size_t BudgetBytes = DefaultCheckpointMemBytes;
    bool DeltaEncode = false;
    unsigned KeyframeInterval = DefaultKeyframeInterval;
  };

  /// Reference configuration: every snapshot stored whole (the PR-3
  /// behavior; also what the eviction arithmetic of older tests assume).
  explicit CheckpointStore(size_t BudgetBytes)
      : CheckpointStore(Options{BudgetBytes, false,
                                DefaultKeyframeInterval}) {}
  explicit CheckpointStore(const Options &O);

  /// Inserts \p CP, evicting least-recently-used segments if the byte
  /// budget overflows. A keyframe larger than the whole budget is
  /// dropped outright (counted as an eviction). Duplicate indices are
  /// ignored and do not perturb the delta chain.
  void insert(std::shared_ptr<const Checkpoint> CP);

  /// Returns the checkpoint with the largest Index <= \p At (the nearest
  /// dominating snapshot for a switch at \p At), or null if none exists
  /// -- the caller then falls back to full replay. Delta entries are
  /// decoded on the way out (at most KeyframeInterval - 1 applications).
  std::shared_ptr<const Checkpoint> nearest(TraceIdx At);

  /// Up to \p MaxCount retained snapshots, decoded, ascending by trace
  /// index, evenly thinned by rank when more are resident. Deterministic
  /// for a deterministic insert sequence. Used to seed the reconvergence
  /// probe sites of switched-run reuse (align::buildReconvergePlan)
  /// without decoding -- and pinning -- the whole store.
  std::vector<std::shared_ptr<const Checkpoint>> sample(size_t MaxCount);

  size_t count() const;
  /// Encoded bytes currently retained -- what the LRU budget is charged
  /// with (equals rawBytes() when delta encoding is off).
  size_t bytes() const;
  size_t encodedBytes() const { return bytes(); }
  /// Bytes the retained snapshots would occupy stored whole; the
  /// rawBytes() / encodedBytes() ratio is the effective capacity gain.
  size_t rawBytes() const;
  /// Cumulative snapshots stored whole / stored as deltas.
  size_t keyframes() const;
  size_t deltaCount() const;
  size_t evictions() const;

private:
  struct Entry {
    std::shared_ptr<const Checkpoint> Full; ///< Keyframes only.
    CheckpointDelta Delta;                  ///< Delta entries only.
    bool IsDelta = false;
    size_t Encoded = 0;
    size_t Raw = 0;
  };
  /// A keyframe plus the deltas chained off it, evicted as one unit.
  struct Segment {
    std::vector<Entry> Chain;
    uint64_t LastUse = 0;
    size_t Encoded = 0;
    size_t Raw = 0;
  };

  void evictLocked(uint64_t KeepSeg);
  void dropSegmentLocked(uint64_t SegId);

  mutable std::mutex M;
  std::map<uint64_t, Segment> Segments;
  /// Trace index -> (segment id, position in that segment's chain).
  std::map<TraceIdx, std::pair<uint64_t, uint32_t>> ByIndex;
  /// Base for the next delta: the last checkpoint actually inserted.
  std::shared_ptr<const Checkpoint> LastInserted;
  uint64_t CurSeg = 0;
  uint64_t NextSegId = 1;
  size_t Budget;
  bool DeltaEncode;
  unsigned KeyframeInterval;
  size_t Bytes = 0;
  size_t RawTotal = 0;
  size_t Evicted = 0;
  size_t KeyframeCount = 0;
  size_t DeltaEncoded = 0;
  uint64_t Tick = 0;
};

/// Immutable, thread-safe store of *input-independent* snapshots shared
/// across verifier sessions over the same program -- the profiler's and
/// the protocol's many-input re-runs all execute the identical prefix up
/// to the first input() read, so a snapshot captured there on one input
/// is a valid resume point on every other input.
///
/// Validity key: entries are registered under (program hash, program
/// identity, switched-run step budget). The hash (FNV-1a over the
/// pretty-printed source) makes the key content-addressed; the Program
/// pointer pins the AST the snapshot's frames reference, so a snapshot
/// can never be adopted by a session over a different (even textually
/// identical) Program object whose lifetime the snapshots do not cover;
/// the budget guarantees a resumed run never exceeds the capturing run's
/// step allowance. The store must outlive every session seeded from it
/// (the multi-input coordinator -- FaultRunner, a bench, the CLI -- owns
/// it).
class SharedCheckpointStore {
public:
  explicit SharedCheckpointStore(
      size_t BudgetBytes = DefaultCheckpointMemBytes / 4)
      : Budget(BudgetBytes) {}

  /// Registers \p CP under the given validity key. Returns false (and
  /// leaves the store unchanged) when the snapshot is not input-
  /// independent, already present, or the byte budget is exhausted --
  /// shared entries are immutable and never evicted, so the budget is a
  /// hard admission cap. \p FromDisk marks entries revived from the
  /// persistent cache (CheckpointDiskStore::load); resumes from them are
  /// attributed to verify.ckpt.disk_hits. A snapshot first promoted by a
  /// live collection pass keeps its live origin even if the cache later
  /// offers the same index.
  bool promote(const std::shared_ptr<const Checkpoint> &CP,
               uint64_t ProgramHash, const void *Program, uint64_t MaxSteps,
               bool FromDisk = false);

  /// All snapshots registered under the key, ascending by trace index.
  std::vector<std::shared_ptr<const Checkpoint>>
  snapshotsFor(uint64_t ProgramHash, const void *Program,
               uint64_t MaxSteps) const;

  /// Trace indices of the key's entries that came from the persistent
  /// cache (promote with FromDisk), ascending.
  std::vector<TraceIdx> diskIndicesFor(uint64_t ProgramHash,
                                       const void *Program,
                                       uint64_t MaxSteps) const;

  size_t count() const;
  size_t bytes() const;
  /// Promotions refused because the admission budget was exhausted.
  size_t rejected() const;

  /// FNV-1a over the pretty-printed program source: the content half of
  /// the validity key.
  static uint64_t hashProgram(const lang::Program &Prog);

private:
  struct Key {
    uint64_t Hash = 0;
    const void *Program = nullptr;
    uint64_t MaxSteps = 0;
    bool operator<(const Key &O) const {
      if (Hash != O.Hash)
        return Hash < O.Hash;
      if (Program != O.Program)
        return Program < O.Program;
      return MaxSteps < O.MaxSteps;
    }
  };

  mutable std::mutex M;
  std::map<Key, std::map<TraceIdx, std::shared_ptr<const Checkpoint>>>
      Entries;
  /// Subset of each key's indices that were promoted FromDisk.
  std::map<Key, std::vector<TraceIdx>> DiskOrigin;
  size_t Budget;
  size_t Bytes = 0;
  size_t Rejected = 0;
};

/// Instructions for one instrumented collection run: snapshot at these
/// trace indices (ascending, deduplicated; each must be a predicate
/// instance of the run being traced). The engine writes back how many
/// sites were skipped because a surrounding call was not clean.
struct CheckpointPlan {
  std::vector<TraceIdx> Sites;
  CheckpointStore *Store = nullptr;

  /// Stride autotuning (CheckpointStrideAuto): when AutoBudgetBytes is
  /// non-zero, Sites holds *every* candidate and the engine thins them
  /// itself -- it captures the first clean site, estimates the per-
  /// snapshot cost from that capture, then keeps every Nth site so that
  /// about 2x AutoBudgetBytes of raw snapshots are attempted (the LRU --
  /// and the delta encoder, when on -- keep the resident set under the
  /// actual budget while switched runs lean on nearest-dominating
  /// resume), subject to a minimum average spacing between snapshots
  /// derived from TraceLength / |Sites|. Deterministic: the choice
  /// depends only on (program, input, budget).
  size_t AutoBudgetBytes = 0;
  /// Length of the trace the sites were drawn from (density input).
  size_t TraceLength = 0;

  /// Cross-input sharing: when set, every captured snapshot that is
  /// input-independent is also promoted here under the given key.
  SharedCheckpointStore *Share = nullptr;
  uint64_t ShareHash = 0;
  const void *ShareProgram = nullptr;
  uint64_t ShareMaxSteps = 0;

  /// Out-params filled by the collection run.
  size_t Collected = 0;
  size_t SkippedDirty = 0;
  /// The stride the engine chose (auto mode only; 0 otherwise).
  unsigned AutoStride = 0;
  /// Snapshots promoted into Share.
  size_t Promoted = 0;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_CHECKPOINT_H
