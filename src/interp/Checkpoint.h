//===-- interp/Checkpoint.h - Interpreter snapshots --------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointed re-execution for switched runs. The paper's implicit-
/// dependence check re-executes the program with one predicate instance
/// switched; because executions are deterministic functions of (program,
/// input, switch), the switched run is bit-identical to the original up
/// to the switch point. A Checkpoint captures the full interpreter state
/// at a predicate instance of the *original* run, so a switched run whose
/// switch point lies at or after the snapshot can splice the recorded
/// prefix of the original trace and resume execution there -- turning
/// O(prefix) replay per candidate into an O(prefix) memcpy-splice plus
/// O(suffix) execution, with none of the prefix's interpretation cost.
///
/// The interpreter is a recursive tree walker, so "interpreter state" is
/// a continuation: per active frame, the path of statement indices from
/// the function body root down to the active statement (CheckpointFrame::
/// Path), plus the frame itself. Checkpoints are only taken at *clean*
/// instants -- the active statement in every non-innermost frame is a
/// statement-root call (`f(x);`, `v = f(x);`, `var v = f(x);`,
/// `return f(x);`) whose arguments are fully evaluated -- so the work
/// remaining in each suspended frame is describable without capturing
/// partially evaluated expressions. Candidate sites inside e.g.
/// `x = f(1) + f(2)` are skipped (CheckpointPlan::SkippedDirty) and fall
/// back to full replay.
///
/// Trace records of statements still on the host stack at capture time
/// mutate after the snapshot (a call-site record gains its return-value
/// use and Defs when the callee returns), so each CheckpointFrame stores
/// an as-of-capture copy of its pending call-site record; resume splices
/// the original trace's prefix and overwrites those few records, making
/// the resumed trace byte-identical to a full replay. See
/// docs/checkpointing.md for the full determinism argument.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_CHECKPOINT_H
#define EOE_INTERP_CHECKPOINT_H

#include "interp/ExecContext.h"
#include "interp/Trace.h"
#include "support/Ids.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace eoe {
namespace interp {

/// One level of the captured continuation: which body of the enclosing
/// construct execution descended into, and the statement index within it.
struct ResumeEntry {
  enum class Body : uint8_t {
    Func, ///< \p Index into the frame function's body.
    Then, ///< ... into the then-body of the If at the previous level.
    Else, ///< ... into the else-body of the If at the previous level.
    Loop, ///< ... into the body of the While at the previous level.
  };
  Body In = Body::Func;
  /// Statement index within that body. The entry's statement is the one
  /// execution was inside at capture time: for non-terminal levels an
  /// If/While/call statement, for the terminal level of the innermost
  /// frame the statement whose beginStep took the snapshot.
  uint32_t Index = 0;
};

/// One suspended activation record.
struct CheckpointFrame {
  /// Copy of the frame (locals, last-def table, serial, call site,
  /// last-predicate-instance map) as of the capture instant.
  ExecFrame State;
  /// Path from the function body root to the active statement.
  std::vector<ResumeEntry> Path;
  /// For non-innermost frames: the trace record of the call statement
  /// that created the next frame, and its as-of-capture contents (the
  /// record mutates when the callee returns). InvalidId for the
  /// innermost frame.
  TraceIdx PendingRec = InvalidId;
  StepRecord PendingSnapshot;
};

/// Full interpreter state at the top of beginStep for one statement
/// instance of the original (unswitched) run -- captured before the
/// instance counter bump, so resuming re-executes that statement and a
/// switch targeting it triggers naturally.
struct Checkpoint {
  /// Trace index the capture happened at: the resumed run's first
  /// executed statement produces record Index.
  TraceIdx Index = 0;
  size_t InputCursor = 0;
  uint64_t StepCount = 0;
  uint64_t FrameCounter = 0;
  /// Outputs emitted so far (prefix of the original trace's Outputs).
  size_t OutputCount = 0;
  std::vector<int64_t> GlobalMem;
  std::vector<TraceIdx> GlobalLastDef;
  std::vector<uint32_t> InstCount;
  /// Active frames, outermost (main) first.
  std::vector<CheckpointFrame> Frames;

  /// Approximate resident size, used against the store's LRU budget.
  size_t bytes() const;
};

/// Thread-safe LRU-bounded container of checkpoints keyed by trace
/// index. Inserts happen during the single-threaded collection pass;
/// lookups (nearest dominating snapshot) come from concurrent
/// verification tasks. Checkpoints are handed out as shared_ptr<const>:
/// resuming only reads, so concurrent restores from one snapshot are
/// race-free.
class CheckpointStore {
public:
  explicit CheckpointStore(size_t BudgetBytes) : Budget(BudgetBytes) {}

  /// Inserts \p CP, evicting least-recently-used snapshots if the byte
  /// budget overflows. A snapshot larger than the whole budget is
  /// dropped outright (counted as an eviction). Duplicate indices are
  /// ignored.
  void insert(std::shared_ptr<const Checkpoint> CP);

  /// Returns the checkpoint with the largest Index <= \p At (the nearest
  /// dominating snapshot for a switch at \p At), or null if none exists
  /// -- the caller then falls back to full replay.
  std::shared_ptr<const Checkpoint> nearest(TraceIdx At);

  size_t count() const;
  size_t bytes() const;
  size_t evictions() const;

private:
  struct Entry {
    std::shared_ptr<const Checkpoint> CP;
    uint64_t LastUse = 0;
  };

  mutable std::mutex M;
  std::map<TraceIdx, Entry> ByIndex;
  size_t Budget;
  size_t Bytes = 0;
  size_t Evicted = 0;
  uint64_t Tick = 0;
};

/// Instructions for one instrumented collection run: snapshot at these
/// trace indices (ascending, deduplicated; each must be a predicate
/// instance of the run being traced). The engine writes back how many
/// sites were skipped because a surrounding call was not clean.
struct CheckpointPlan {
  std::vector<TraceIdx> Sites;
  CheckpointStore *Store = nullptr;
  /// Out-params filled by the collection run.
  size_t Collected = 0;
  size_t SkippedDirty = 0;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_CHECKPOINT_H
