//===-- interp/SwitchedRunStore.cpp - Switched-run snapshot cache -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/SwitchedRunStore.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::interp;

uint64_t SwitchedRunStore::hashInput(const std::vector<int64_t> &Input) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  for (int64_t V : Input) {
    uint64_t U = static_cast<uint64_t>(V);
    for (int Shift = 0; Shift < 64; Shift += 8) {
      H ^= (U >> Shift) & 0xff;
      H *= 1099511628211ull; // FNV-1a prime.
    }
  }
  return H;
}

static size_t stepBytes(const StepRecord &R) {
  return sizeof(StepRecord) + R.Uses.capacity() * sizeof(UseRecord) +
         R.Defs.capacity() * sizeof(DefRecord);
}

size_t SwitchedRunStore::traceBytes(const ExecutionTrace &T) {
  size_t N = sizeof(ExecutionTrace);
  for (const StepRecord &R : T.Steps)
    N += stepBytes(R);
  N += T.Outputs.capacity() * sizeof(OutputEvent);
  return N;
}

static size_t bundleBytes(const SwitchedRunStore::Bundle &B) {
  size_t N = B.Key.capacity() * sizeof(SwitchDecision);
  if (B.Prefix)
    N += SwitchedRunStore::traceBytes(*B.Prefix);
  for (const auto &CP : B.Snapshots)
    if (CP)
      N += CP->bytes();
  return N;
}

void SwitchedRunStore::stage(const ValidityKey &K, Bundle B) {
  if (B.Snapshots.empty() || !B.Prefix)
    return;
  size_t Sz = bundleBytes(B);
  std::lock_guard<std::mutex> Lock(M);
  Staged.push_back(StagedBundle{K, std::move(B), Sz});
}

size_t SwitchedRunStore::seal() {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<const StagedBundle *> Order;
  Order.reserve(Staged.size());
  for (const StagedBundle &S : Staged)
    Order.push_back(&S);
  // Canonical admission order: earlier divergence first (its snapshots
  // cover more downstream switch sets), then the key itself as the total
  // tiebreak. SwitchedStep of the trimmed prefix is the capturing run's
  // first forced alteration -- a pure function of the bundle, not of
  // staging order.
  auto DivergeStep = [](const StagedBundle *S) {
    return S->B.Prefix->SwitchedStep;
  };
  std::sort(Order.begin(), Order.end(),
            [&](const StagedBundle *A, const StagedBundle *B) {
              if (!(A->K == B->K))
                return A->K < B->K;
              if (DivergeStep(A) != DivergeStep(B))
                return DivergeStep(A) < DivergeStep(B);
              if (A->B.Key != B->B.Key)
                return A->B.Key < B->B.Key;
              // Identical (K, divergence key) duplicates: prefer the one
              // with the deepest snapshot, then smaller footprint.
              TraceIdx DA = A->B.Snapshots.back()->Index;
              TraceIdx DB = B->B.Snapshots.back()->Index;
              if (DA != DB)
                return DA > DB;
              return A->Bytes < B->Bytes;
            });

  Sealed.clear();
  SealedN = DroppedN = SealedBytes = 0;
  std::map<ValidityKey, std::vector<std::vector<SwitchDecision>>> SeenKeys;
  size_t Used = 0;
  for (const StagedBundle *S : Order) {
    auto &Keys = SeenKeys[S->K];
    if (std::find(Keys.begin(), Keys.end(), S->B.Key) != Keys.end()) {
      ++DroppedN; // Duplicate divergence key; the canonical first wins.
      continue;
    }
    if (Used + S->Bytes > Budget) {
      ++DroppedN;
      continue;
    }
    Keys.push_back(S->B.Key);
    Sealed[S->K].push_back(S);
    Used += S->Bytes;
    ++SealedN;
  }
  SealedBytes = Used;
  SealedOnce = true;
  return SealedN;
}

std::optional<SwitchedRunStore::Hit>
SwitchedRunStore::lookup(const ValidityKey &K,
                         const std::vector<SwitchDecision> &Requested) {
  std::lock_guard<std::mutex> Lock(M);
  if (!SealedOnce)
    return std::nullopt;
  ++Lookups;
  auto It = Sealed.find(K);
  if (It == Sealed.end())
    return std::nullopt;

  const StagedBundle *BestBundle = nullptr;
  std::shared_ptr<const Checkpoint> BestCP;
  for (const StagedBundle *S : It->second) {
    const std::vector<SwitchDecision> &BK = S->B.Key;
    if (BK.size() > Requested.size() ||
        !std::equal(BK.begin(), BK.end(), Requested.begin()))
      continue;
    // Deepest snapshot of this bundle through which every decision not
    // yet applied can still fire (its instance counter has not passed
    // the decision's instance).
    for (auto RIt = S->B.Snapshots.rbegin(); RIt != S->B.Snapshots.rend();
         ++RIt) {
      const Checkpoint &CP = **RIt;
      bool Ok = true;
      for (size_t I = BK.size(); I < Requested.size() && Ok; ++I) {
        const SwitchDecision &D = Requested[I];
        if (D.Stmt < CP.InstCount.size() &&
            CP.InstCount[D.Stmt] >= D.InstanceNo)
          Ok = false;
      }
      if (!Ok)
        continue;
      if (!BestCP || CP.Index > BestCP->Index ||
          (CP.Index == BestCP->Index && BK.size() > BestBundle->B.Key.size()))
        BestBundle = S, BestCP = *RIt;
      break; // Deeper-first scan: first valid is this bundle's best.
    }
  }
  if (!BestCP)
    return std::nullopt;
  ++Hits;
  return Hit{BestCP, BestBundle->B.Prefix};
}

bool SwitchedRunStore::sealed() const {
  std::lock_guard<std::mutex> Lock(M);
  return SealedOnce;
}

size_t SwitchedRunStore::stagedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Staged.size();
}

size_t SwitchedRunStore::sealedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return SealedN;
}

size_t SwitchedRunStore::droppedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return DroppedN;
}

size_t SwitchedRunStore::bytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return SealedBytes;
}

size_t SwitchedRunStore::lookups() const {
  std::lock_guard<std::mutex> Lock(M);
  return Lookups;
}

size_t SwitchedRunStore::hits() const {
  std::lock_guard<std::mutex> Lock(M);
  return Hits;
}
