file(REMOVE_RECURSE
  "libeoe_slicing.a"
)
