
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slicing/Confidence.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/Confidence.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/Confidence.cpp.o.d"
  "/root/repo/src/slicing/DynamicSlicer.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/DynamicSlicer.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/DynamicSlicer.cpp.o.d"
  "/root/repo/src/slicing/Invertibility.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/Invertibility.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/Invertibility.cpp.o.d"
  "/root/repo/src/slicing/OutputVerdicts.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/OutputVerdicts.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/OutputVerdicts.cpp.o.d"
  "/root/repo/src/slicing/PotentialDeps.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/PotentialDeps.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/PotentialDeps.cpp.o.d"
  "/root/repo/src/slicing/Pruning.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/Pruning.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/Pruning.cpp.o.d"
  "/root/repo/src/slicing/RelevantSlicer.cpp" "src/slicing/CMakeFiles/eoe_slicing.dir/RelevantSlicer.cpp.o" "gcc" "src/slicing/CMakeFiles/eoe_slicing.dir/RelevantSlicer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ddg/CMakeFiles/eoe_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/eoe_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eoe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
