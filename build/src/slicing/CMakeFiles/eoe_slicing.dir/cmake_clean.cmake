file(REMOVE_RECURSE
  "CMakeFiles/eoe_slicing.dir/Confidence.cpp.o"
  "CMakeFiles/eoe_slicing.dir/Confidence.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/DynamicSlicer.cpp.o"
  "CMakeFiles/eoe_slicing.dir/DynamicSlicer.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/Invertibility.cpp.o"
  "CMakeFiles/eoe_slicing.dir/Invertibility.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/OutputVerdicts.cpp.o"
  "CMakeFiles/eoe_slicing.dir/OutputVerdicts.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/PotentialDeps.cpp.o"
  "CMakeFiles/eoe_slicing.dir/PotentialDeps.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/Pruning.cpp.o"
  "CMakeFiles/eoe_slicing.dir/Pruning.cpp.o.d"
  "CMakeFiles/eoe_slicing.dir/RelevantSlicer.cpp.o"
  "CMakeFiles/eoe_slicing.dir/RelevantSlicer.cpp.o.d"
  "libeoe_slicing.a"
  "libeoe_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
