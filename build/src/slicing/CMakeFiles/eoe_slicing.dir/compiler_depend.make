# Empty compiler generated dependencies file for eoe_slicing.
# This may be replaced when dependencies are built.
