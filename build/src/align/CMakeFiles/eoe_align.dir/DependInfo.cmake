
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/Aligner.cpp" "src/align/CMakeFiles/eoe_align.dir/Aligner.cpp.o" "gcc" "src/align/CMakeFiles/eoe_align.dir/Aligner.cpp.o.d"
  "/root/repo/src/align/RegionTree.cpp" "src/align/CMakeFiles/eoe_align.dir/RegionTree.cpp.o" "gcc" "src/align/CMakeFiles/eoe_align.dir/RegionTree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/eoe_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eoe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
