file(REMOVE_RECURSE
  "CMakeFiles/eoe_align.dir/Aligner.cpp.o"
  "CMakeFiles/eoe_align.dir/Aligner.cpp.o.d"
  "CMakeFiles/eoe_align.dir/RegionTree.cpp.o"
  "CMakeFiles/eoe_align.dir/RegionTree.cpp.o.d"
  "libeoe_align.a"
  "libeoe_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
