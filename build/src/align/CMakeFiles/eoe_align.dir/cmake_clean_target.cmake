file(REMOVE_RECURSE
  "libeoe_align.a"
)
