# Empty compiler generated dependencies file for eoe_align.
# This may be replaced when dependencies are built.
