# Empty dependencies file for eoe_core.
# This may be replaced when dependencies are built.
