file(REMOVE_RECURSE
  "CMakeFiles/eoe_core.dir/CriticalPredicate.cpp.o"
  "CMakeFiles/eoe_core.dir/CriticalPredicate.cpp.o.d"
  "CMakeFiles/eoe_core.dir/DebugSession.cpp.o"
  "CMakeFiles/eoe_core.dir/DebugSession.cpp.o.d"
  "CMakeFiles/eoe_core.dir/LocateFault.cpp.o"
  "CMakeFiles/eoe_core.dir/LocateFault.cpp.o.d"
  "CMakeFiles/eoe_core.dir/ValuePerturb.cpp.o"
  "CMakeFiles/eoe_core.dir/ValuePerturb.cpp.o.d"
  "CMakeFiles/eoe_core.dir/VerifyDep.cpp.o"
  "CMakeFiles/eoe_core.dir/VerifyDep.cpp.o.d"
  "libeoe_core.a"
  "libeoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
