file(REMOVE_RECURSE
  "libeoe_core.a"
)
