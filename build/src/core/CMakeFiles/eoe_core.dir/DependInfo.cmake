
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CriticalPredicate.cpp" "src/core/CMakeFiles/eoe_core.dir/CriticalPredicate.cpp.o" "gcc" "src/core/CMakeFiles/eoe_core.dir/CriticalPredicate.cpp.o.d"
  "/root/repo/src/core/DebugSession.cpp" "src/core/CMakeFiles/eoe_core.dir/DebugSession.cpp.o" "gcc" "src/core/CMakeFiles/eoe_core.dir/DebugSession.cpp.o.d"
  "/root/repo/src/core/LocateFault.cpp" "src/core/CMakeFiles/eoe_core.dir/LocateFault.cpp.o" "gcc" "src/core/CMakeFiles/eoe_core.dir/LocateFault.cpp.o.d"
  "/root/repo/src/core/ValuePerturb.cpp" "src/core/CMakeFiles/eoe_core.dir/ValuePerturb.cpp.o" "gcc" "src/core/CMakeFiles/eoe_core.dir/ValuePerturb.cpp.o.d"
  "/root/repo/src/core/VerifyDep.cpp" "src/core/CMakeFiles/eoe_core.dir/VerifyDep.cpp.o" "gcc" "src/core/CMakeFiles/eoe_core.dir/VerifyDep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slicing/CMakeFiles/eoe_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/eoe_align.dir/DependInfo.cmake"
  "/root/repo/build/src/ddg/CMakeFiles/eoe_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/eoe_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eoe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
