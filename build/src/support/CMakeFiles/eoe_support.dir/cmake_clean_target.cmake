file(REMOVE_RECURSE
  "libeoe_support.a"
)
