file(REMOVE_RECURSE
  "CMakeFiles/eoe_support.dir/Diagnostic.cpp.o"
  "CMakeFiles/eoe_support.dir/Diagnostic.cpp.o.d"
  "CMakeFiles/eoe_support.dir/StringUtils.cpp.o"
  "CMakeFiles/eoe_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/eoe_support.dir/Table.cpp.o"
  "CMakeFiles/eoe_support.dir/Table.cpp.o.d"
  "libeoe_support.a"
  "libeoe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
