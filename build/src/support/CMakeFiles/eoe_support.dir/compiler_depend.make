# Empty compiler generated dependencies file for eoe_support.
# This may be replaced when dependencies are built.
