# Empty dependencies file for eoe_lang.
# This may be replaced when dependencies are built.
