file(REMOVE_RECURSE
  "CMakeFiles/eoe_lang.dir/AST.cpp.o"
  "CMakeFiles/eoe_lang.dir/AST.cpp.o.d"
  "CMakeFiles/eoe_lang.dir/Lexer.cpp.o"
  "CMakeFiles/eoe_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/eoe_lang.dir/Parser.cpp.o"
  "CMakeFiles/eoe_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/eoe_lang.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/eoe_lang.dir/PrettyPrinter.cpp.o.d"
  "CMakeFiles/eoe_lang.dir/Sema.cpp.o"
  "CMakeFiles/eoe_lang.dir/Sema.cpp.o.d"
  "libeoe_lang.a"
  "libeoe_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
