file(REMOVE_RECURSE
  "libeoe_lang.a"
)
