file(REMOVE_RECURSE
  "libeoe_viz.a"
)
