# Empty compiler generated dependencies file for eoe_viz.
# This may be replaced when dependencies are built.
