file(REMOVE_RECURSE
  "CMakeFiles/eoe_viz.dir/Dot.cpp.o"
  "CMakeFiles/eoe_viz.dir/Dot.cpp.o.d"
  "libeoe_viz.a"
  "libeoe_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
