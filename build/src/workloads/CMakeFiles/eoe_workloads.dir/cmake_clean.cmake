file(REMOVE_RECURSE
  "CMakeFiles/eoe_workloads.dir/MiniFlex.cpp.o"
  "CMakeFiles/eoe_workloads.dir/MiniFlex.cpp.o.d"
  "CMakeFiles/eoe_workloads.dir/MiniGrep.cpp.o"
  "CMakeFiles/eoe_workloads.dir/MiniGrep.cpp.o.d"
  "CMakeFiles/eoe_workloads.dir/MiniGzip.cpp.o"
  "CMakeFiles/eoe_workloads.dir/MiniGzip.cpp.o.d"
  "CMakeFiles/eoe_workloads.dir/MiniSed.cpp.o"
  "CMakeFiles/eoe_workloads.dir/MiniSed.cpp.o.d"
  "CMakeFiles/eoe_workloads.dir/Registry.cpp.o"
  "CMakeFiles/eoe_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/eoe_workloads.dir/Runner.cpp.o"
  "CMakeFiles/eoe_workloads.dir/Runner.cpp.o.d"
  "libeoe_workloads.a"
  "libeoe_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
