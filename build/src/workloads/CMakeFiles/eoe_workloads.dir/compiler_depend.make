# Empty compiler generated dependencies file for eoe_workloads.
# This may be replaced when dependencies are built.
