
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/MiniFlex.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniFlex.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniFlex.cpp.o.d"
  "/root/repo/src/workloads/MiniGrep.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniGrep.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniGrep.cpp.o.d"
  "/root/repo/src/workloads/MiniGzip.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniGzip.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniGzip.cpp.o.d"
  "/root/repo/src/workloads/MiniSed.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniSed.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/MiniSed.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Runner.cpp" "src/workloads/CMakeFiles/eoe_workloads.dir/Runner.cpp.o" "gcc" "src/workloads/CMakeFiles/eoe_workloads.dir/Runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/eoe_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/eoe_align.dir/DependInfo.cmake"
  "/root/repo/build/src/ddg/CMakeFiles/eoe_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/eoe_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eoe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
