file(REMOVE_RECURSE
  "libeoe_workloads.a"
)
