file(REMOVE_RECURSE
  "CMakeFiles/eoe_ddg.dir/DepGraph.cpp.o"
  "CMakeFiles/eoe_ddg.dir/DepGraph.cpp.o.d"
  "libeoe_ddg.a"
  "libeoe_ddg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
