file(REMOVE_RECURSE
  "libeoe_ddg.a"
)
