# Empty compiler generated dependencies file for eoe_ddg.
# This may be replaced when dependencies are built.
