file(REMOVE_RECURSE
  "CMakeFiles/eoe_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/eoe_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/eoe_interp.dir/Profiler.cpp.o"
  "CMakeFiles/eoe_interp.dir/Profiler.cpp.o.d"
  "CMakeFiles/eoe_interp.dir/TraceIO.cpp.o"
  "CMakeFiles/eoe_interp.dir/TraceIO.cpp.o.d"
  "libeoe_interp.a"
  "libeoe_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
