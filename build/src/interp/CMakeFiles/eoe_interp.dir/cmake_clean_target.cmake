file(REMOVE_RECURSE
  "libeoe_interp.a"
)
