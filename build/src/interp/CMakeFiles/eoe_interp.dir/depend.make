# Empty dependencies file for eoe_interp.
# This may be replaced when dependencies are built.
