file(REMOVE_RECURSE
  "CMakeFiles/eoe_analysis.dir/CFG.cpp.o"
  "CMakeFiles/eoe_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/eoe_analysis.dir/ControlDependence.cpp.o"
  "CMakeFiles/eoe_analysis.dir/ControlDependence.cpp.o.d"
  "CMakeFiles/eoe_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/eoe_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/eoe_analysis.dir/StaticAnalysis.cpp.o"
  "CMakeFiles/eoe_analysis.dir/StaticAnalysis.cpp.o.d"
  "libeoe_analysis.a"
  "libeoe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
