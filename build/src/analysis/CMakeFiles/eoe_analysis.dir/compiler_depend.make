# Empty compiler generated dependencies file for eoe_analysis.
# This may be replaced when dependencies are built.
