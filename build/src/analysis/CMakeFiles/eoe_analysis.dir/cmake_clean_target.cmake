file(REMOVE_RECURSE
  "libeoe_analysis.a"
)
