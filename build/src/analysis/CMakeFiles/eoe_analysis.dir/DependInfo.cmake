
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/eoe_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/eoe_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/ControlDependence.cpp" "src/analysis/CMakeFiles/eoe_analysis.dir/ControlDependence.cpp.o" "gcc" "src/analysis/CMakeFiles/eoe_analysis.dir/ControlDependence.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/eoe_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/eoe_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/StaticAnalysis.cpp" "src/analysis/CMakeFiles/eoe_analysis.dir/StaticAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/eoe_analysis.dir/StaticAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
