# Empty compiler generated dependencies file for eoec.
# This may be replaced when dependencies are built.
