file(REMOVE_RECURSE
  "CMakeFiles/eoec.dir/eoec.cpp.o"
  "CMakeFiles/eoec.dir/eoec.cpp.o.d"
  "eoec"
  "eoec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
