# Empty compiler generated dependencies file for eoe-fuzz.
# This may be replaced when dependencies are built.
