file(REMOVE_RECURSE
  "CMakeFiles/eoe-fuzz.dir/eoe-fuzz.cpp.o"
  "CMakeFiles/eoe-fuzz.dir/eoe-fuzz.cpp.o.d"
  "eoe-fuzz"
  "eoe-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eoe-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
