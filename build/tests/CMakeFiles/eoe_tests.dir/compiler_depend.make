# Empty compiler generated dependencies file for eoe_tests.
# This may be replaced when dependencies are built.
