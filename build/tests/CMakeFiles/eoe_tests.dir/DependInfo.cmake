
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AlignerTest.cpp" "tests/CMakeFiles/eoe_tests.dir/AlignerTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/AlignerTest.cpp.o.d"
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/eoe_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/ArithmeticTest.cpp" "tests/CMakeFiles/eoe_tests.dir/ArithmeticTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/ArithmeticTest.cpp.o.d"
  "/root/repo/tests/ConfidenceTest.cpp" "tests/CMakeFiles/eoe_tests.dir/ConfidenceTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/ConfidenceTest.cpp.o.d"
  "/root/repo/tests/CriticalPredicateTest.cpp" "tests/CMakeFiles/eoe_tests.dir/CriticalPredicateTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/CriticalPredicateTest.cpp.o.d"
  "/root/repo/tests/DebugSessionTest.cpp" "tests/CMakeFiles/eoe_tests.dir/DebugSessionTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/DebugSessionTest.cpp.o.d"
  "/root/repo/tests/DepGraphTest.cpp" "tests/CMakeFiles/eoe_tests.dir/DepGraphTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/DepGraphTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/eoe_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/LangEdgeTest.cpp" "tests/CMakeFiles/eoe_tests.dir/LangEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/LangEdgeTest.cpp.o.d"
  "/root/repo/tests/LexerTest.cpp" "tests/CMakeFiles/eoe_tests.dir/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/LexerTest.cpp.o.d"
  "/root/repo/tests/LocateFaultTest.cpp" "tests/CMakeFiles/eoe_tests.dir/LocateFaultTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/LocateFaultTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/eoe_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PrettyPrinterTest.cpp" "tests/CMakeFiles/eoe_tests.dir/PrettyPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/PrettyPrinterTest.cpp.o.d"
  "/root/repo/tests/ProfilerTest.cpp" "tests/CMakeFiles/eoe_tests.dir/ProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/ProfilerTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/eoe_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RandomOmissionTest.cpp" "tests/CMakeFiles/eoe_tests.dir/RandomOmissionTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/RandomOmissionTest.cpp.o.d"
  "/root/repo/tests/RegionTreeTest.cpp" "tests/CMakeFiles/eoe_tests.dir/RegionTreeTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/RegionTreeTest.cpp.o.d"
  "/root/repo/tests/SemaTest.cpp" "tests/CMakeFiles/eoe_tests.dir/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/SemaTest.cpp.o.d"
  "/root/repo/tests/SlicingTest.cpp" "tests/CMakeFiles/eoe_tests.dir/SlicingTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/SlicingTest.cpp.o.d"
  "/root/repo/tests/StressTest.cpp" "tests/CMakeFiles/eoe_tests.dir/StressTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/StressTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/eoe_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TraceIOTest.cpp" "tests/CMakeFiles/eoe_tests.dir/TraceIOTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/TraceIOTest.cpp.o.d"
  "/root/repo/tests/TraceTest.cpp" "tests/CMakeFiles/eoe_tests.dir/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/TraceTest.cpp.o.d"
  "/root/repo/tests/ValuePerturbTest.cpp" "tests/CMakeFiles/eoe_tests.dir/ValuePerturbTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/ValuePerturbTest.cpp.o.d"
  "/root/repo/tests/VerifyDepTest.cpp" "tests/CMakeFiles/eoe_tests.dir/VerifyDepTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/VerifyDepTest.cpp.o.d"
  "/root/repo/tests/VizTest.cpp" "tests/CMakeFiles/eoe_tests.dir/VizTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/VizTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/eoe_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/eoe_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eoe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/eoe_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/eoe_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/slicing/CMakeFiles/eoe_slicing.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/eoe_align.dir/DependInfo.cmake"
  "/root/repo/build/src/ddg/CMakeFiles/eoe_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/eoe_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eoe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eoe_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eoe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
