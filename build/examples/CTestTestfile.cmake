# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_debug_gzip "/root/repo/build/examples/debug_gzip")
set_tests_properties(example_debug_gzip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_align_explorer "/root/repo/build/examples/align_explorer")
set_tests_properties(example_align_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_slicers "/root/repo/build/examples/compare_slicers" "gzip-v2-f3")
set_tests_properties(example_compare_slicers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
