# Empty dependencies file for compare_slicers.
# This may be replaced when dependencies are built.
