file(REMOVE_RECURSE
  "CMakeFiles/compare_slicers.dir/compare_slicers.cpp.o"
  "CMakeFiles/compare_slicers.dir/compare_slicers.cpp.o.d"
  "compare_slicers"
  "compare_slicers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_slicers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
