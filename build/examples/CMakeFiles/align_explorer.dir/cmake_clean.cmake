file(REMOVE_RECURSE
  "CMakeFiles/align_explorer.dir/align_explorer.cpp.o"
  "CMakeFiles/align_explorer.dir/align_explorer.cpp.o.d"
  "align_explorer"
  "align_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
