# Empty dependencies file for align_explorer.
# This may be replaced when dependencies are built.
