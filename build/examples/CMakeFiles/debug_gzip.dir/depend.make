# Empty dependencies file for debug_gzip.
# This may be replaced when dependencies are built.
