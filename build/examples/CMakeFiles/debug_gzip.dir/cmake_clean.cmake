file(REMOVE_RECURSE
  "CMakeFiles/debug_gzip.dir/debug_gzip.cpp.o"
  "CMakeFiles/debug_gzip.dir/debug_gzip.cpp.o.d"
  "debug_gzip"
  "debug_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
