# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_figure1 "/root/repo/build/bench/bench_figure1")
set_tests_properties(bench_smoke_figure1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_figure2 "/root/repo/build/bench/bench_figure2_alignment")
set_tests_properties(bench_smoke_figure2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_confidence "/root/repo/build/bench/bench_confidence")
set_tests_properties(bench_smoke_confidence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_discussion "/root/repo/build/bench/bench_discussion")
set_tests_properties(bench_smoke_discussion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
