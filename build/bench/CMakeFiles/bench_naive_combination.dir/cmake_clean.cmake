file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_combination.dir/bench_naive_combination.cpp.o"
  "CMakeFiles/bench_naive_combination.dir/bench_naive_combination.cpp.o.d"
  "bench_naive_combination"
  "bench_naive_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
