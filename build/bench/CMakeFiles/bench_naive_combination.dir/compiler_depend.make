# Empty compiler generated dependencies file for bench_naive_combination.
# This may be replaced when dependencies are built.
