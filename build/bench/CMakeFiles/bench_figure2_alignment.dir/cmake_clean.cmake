file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_alignment.dir/bench_figure2_alignment.cpp.o"
  "CMakeFiles/bench_figure2_alignment.dir/bench_figure2_alignment.cpp.o.d"
  "bench_figure2_alignment"
  "bench_figure2_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
