# Empty compiler generated dependencies file for bench_figure2_alignment.
# This may be replaced when dependencies are built.
