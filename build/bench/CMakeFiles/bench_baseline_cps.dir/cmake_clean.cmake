file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_cps.dir/bench_baseline_cps.cpp.o"
  "CMakeFiles/bench_baseline_cps.dir/bench_baseline_cps.cpp.o.d"
  "bench_baseline_cps"
  "bench_baseline_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
