# Empty dependencies file for bench_baseline_cps.
# This may be replaced when dependencies are built.
